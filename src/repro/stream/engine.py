"""The incremental daily-ingest engine.

:class:`StreamEngine` consumes per-``(source, day)`` observation
partitions as they land and maintains, incrementally, every aggregate
behind Figures 2–6 of the paper — without ever re-scanning history. One
day's ingest costs O(that day's observations).

Ordering discipline per source:

* the partition for the next expected day is **applied** immediately and
  any quarantined successors are drained;
* a partition from the future (a gap exists) is **quarantined** until the
  gap fills or is declared missing via :meth:`skip_missing`;
* a partition for a day previously declared missing is a **late arrival**
  and is reconciled on the spot — daily series are point-updated and use
  intervals are stitched back together, so the final state is identical
  to an in-order run;
* a partition for an already-applied day is a duplicate (error, or
  skipped when resuming over a replayed feed).

Containment discipline per *scope* (the detection universe a source
feeds): a partition whose rows cannot be read — bit rot, a poisoned
upstream — **quarantines the scope** instead of killing the run. While a
scope is quarantined its partitions are dropped and recorded as holes;
:meth:`release_quarantine` lifts it, after which later days apply
normally and re-delivered dropped days reconcile as late arrivals, so a
healed scope converges to exactly the clean state.

The engine's whole state round-trips through :meth:`to_dict` /
:meth:`from_dict` (see :mod:`repro.stream.checkpoint` for the on-disk
format), which is what makes kill-and-resume byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.batch.batch import MatchKey, ObservationBatch
from repro.core.detection import DetectionResult, UseInterval
from repro.core.flux import FluxAnalysis, FluxSeries
from repro.core.growth import GrowthAnalysis, GrowthSeries
from repro.core.peaks import PeakAnalysis, PeakStats
from repro.core.references import RefType, SignatureCatalog
from repro.measurement.scheduler import ALL_SOURCES, DayPartition
from repro.measurement.snapshot import DomainObservation
from repro.sketch.plane import (
    SketchConfig,
    SketchPlane,
    provider_slds_of,
)
from repro.stream.state import ScopeState

GTLD_SOURCES = ("com", "net", "org")

#: source → detection scope (which batch detector it corresponds to).
SCOPE_OF_SOURCE = {
    "com": "gtld",
    "net": "gtld",
    "org": "gtld",
    "nl": "nl",
    "alexa": "alexa",
}

#: ingest() outcomes.
APPLIED = "applied"
QUARANTINED = "quarantined"
RECONCILED = "reconciled"
DUPLICATE = "duplicate"
#: The partition could not be read; its scope is now quarantined.
POISONED = "poisoned"
#: The partition was dropped because its scope is quarantined.
DROPPED = "dropped"


@dataclass
class SourceCursor:
    """Per-source ingest bookkeeping."""

    #: First day of the source's window (set on first contact).
    start: Optional[int] = None
    #: Next day expected in order (all earlier days applied or holes).
    next_day: Optional[int] = None
    #: Days declared missing (skipped); shrink on late arrival.
    holes: Set[int] = field(default_factory=set)
    #: Out-of-order partitions waiting for their gap to fill.
    quarantine: Dict[int, DayPartition] = field(default_factory=dict)
    #: day → listing size, for the expansion series.
    zone_sizes: Dict[int, int] = field(default_factory=dict)

    def applied_days(self) -> int:
        if self.next_day is None or self.start is None:
            return 0
        return self.next_day - self.start - len(self.holes)


class StreamEngine:
    """Incremental DPS-adoption state over daily observation partitions."""

    def __init__(
        self,
        horizon: int,
        catalog: Optional[SignatureCatalog] = None,
        sources: Sequence[str] = ALL_SOURCES,
        windows: Optional[Mapping[str, Tuple[int, int]]] = None,
        growth: Optional[GrowthAnalysis] = None,
        sketches: Optional[SketchConfig] = None,
    ):
        self.horizon = horizon
        # Configuration, not state: deliberately absent from checkpoints
        # (load_checkpoint takes the catalog as an argument).
        self.catalog = (  # repro: ignore[schema-drift]
            catalog or SignatureCatalog.paper_table2()
        )
        self.sources = tuple(sources)
        unknown = set(self.sources) - set(SCOPE_OF_SOURCE)
        if unknown:
            raise ValueError(f"unknown sources: {sorted(unknown)}")
        self._windows: Dict[str, Tuple[int, int]] = dict(windows or {})
        # Configuration, not state (same contract as the catalog).
        self._growth = growth or GrowthAnalysis()  # repro: ignore[schema-drift]
        self._scopes: Dict[str, ScopeState] = {
            scope: ScopeState(horizon)
            for scope in dict.fromkeys(
                SCOPE_OF_SOURCE[source] for source in self.sources
            )
        }
        self._cursors: Dict[str, SourceCursor] = {
            source: SourceCursor() for source in self.sources
        }
        #: The optional streaming sketch plane (``repro.sketch``): one
        #: constant-memory summary set per scope, updated per row on
        #: both ingest paths and serialized with the engine — byte-
        #: identity across serial/sharded/resumed runs is what the
        #: sketch identity suite pins.
        self._sketches: Optional[SketchPlane] = (
            SketchPlane(
                sketches,
                self._scopes,
                provider_slds_of(self.catalog),
            )
            if sketches is not None
            else None
        )
        #: Signature-match memo. A domain's observation is piecewise
        #: constant over time and matching only reads the NS names, the
        #: CNAME expansion and the origin ASNs, so the daily re-match of
        #: an unchanged domain is a dict hit instead of a DNS-name parse
        #: (the dominant cost of naive daily ingestion). Derived data —
        #: never serialised, rebuilt on demand after a resume.
        self._match_cache: Dict[  # repro: ignore[schema-drift]
            Tuple[Tuple[str, ...], Tuple[str, ...], FrozenSet[int]],
            Dict[str, FrozenSet[RefType]],
        ] = {}
        #: scope → reason, for scopes under quarantine escalation.
        self._quarantined: Dict[str, str] = {}
        #: Called after every applied/reconciled partition with
        #: ``(source, day)``. Derived wiring (the serve plane's snapshot
        #: swapper hangs off this) — never serialised, re-attached after
        #: a resume.
        self._apply_listeners: List[  # repro: ignore[schema-drift]
            Callable[[str, int], None]
        ] = []
        self.partitions_applied = 0
        self.late_arrivals = 0
        self.partitions_dropped = 0

    def add_apply_listener(
        self, listener: Callable[[str, int], None]
    ) -> None:
        """Register *listener* to run after each applied partition.

        Listeners fire synchronously on the ingest path, after the
        partition's state mutations are complete — a listener therefore
        never observes a torn day. They are configuration, not state:
        checkpoints do not carry them and a resumed engine starts with
        none.
        """
        self._apply_listeners.append(listener)

    def _notify_applied(self, source: str, day: int) -> None:
        for listener in self._apply_listeners:
            listener(source, day)

    # -- ingestion ----------------------------------------------------------

    def ingest(
        self, partition: DayPartition, on_duplicate: str = "raise"
    ) -> str:
        """Ingest one partition; returns the outcome (see module docs)."""
        source, day = partition.source, partition.day
        cursor = self._cursors.get(source)
        if cursor is None:
            raise ValueError(f"source {source!r} not tracked by this engine")
        if not 0 <= day < self.horizon:
            raise ValueError(f"day {day} outside horizon {self.horizon}")
        next_day = cursor.next_day
        if next_day is None:
            window = self._windows.get(source)
            next_day = window[0] if window else day
            cursor.start = next_day
            cursor.next_day = next_day
        if SCOPE_OF_SOURCE[source] in self._quarantined:
            return self._drop(cursor, source, day, next_day, on_duplicate)
        if day < next_day:
            if day in cursor.holes:
                if not self._apply_or_quarantine(partition):
                    return POISONED
                cursor.holes.discard(day)
                self.late_arrivals += 1
                self._notify_applied(source, day)
                return RECONCILED
            return self._duplicate(source, day, on_duplicate)
        if day > next_day:
            if day in cursor.quarantine:
                return self._duplicate(source, day, on_duplicate)
            cursor.quarantine[day] = partition
            return QUARANTINED
        if not self._apply_or_quarantine(partition):
            # The poisoned day becomes a hole: a clean redelivery after
            # release_quarantine reconciles it like any late arrival.
            cursor.holes.add(day)
            cursor.next_day = next_day + 1
            return POISONED
        cursor.next_day = next_day + 1
        self._notify_applied(source, day)
        self._drain(source, cursor)
        return APPLIED

    def _drop(
        self,
        cursor: SourceCursor,
        source: str,
        day: int,
        next_day: int,
        on_duplicate: str,
    ) -> str:
        """Drop a partition for a quarantined scope, recording holes."""
        if day < next_day:
            if day in cursor.holes:
                self.partitions_dropped += 1
                return DROPPED
            return self._duplicate(source, day, on_duplicate)
        for missing in range(next_day, day + 1):
            cursor.quarantine.pop(missing, None)
            cursor.holes.add(missing)
        cursor.next_day = day + 1
        self.partitions_dropped += 1
        return DROPPED

    def skip_missing(self, source: str) -> List[int]:
        """Declare the gap before the quarantine missing and move on.

        Returns the days declared missing. If one of them arrives later it
        is reconciled as a late arrival.
        """
        cursor = self._cursors[source]
        if not cursor.quarantine or cursor.next_day is None:
            return []
        gap = list(range(cursor.next_day, min(cursor.quarantine)))
        cursor.holes.update(gap)
        cursor.next_day = min(cursor.quarantine)
        self._drain(source, cursor)
        return gap

    def _drain(self, source: str, cursor: SourceCursor) -> None:
        scope_name = SCOPE_OF_SOURCE[source]
        while (
            cursor.next_day is not None
            and cursor.next_day in cursor.quarantine
        ):
            day = cursor.next_day
            partition = cursor.quarantine.pop(day)
            if scope_name in self._quarantined:
                cursor.holes.add(day)
                self.partitions_dropped += 1
                cursor.next_day = day + 1
            elif not self._apply_or_quarantine(partition):
                cursor.holes.add(day)
                cursor.next_day = day + 1
            else:
                cursor.next_day = day + 1
                self._notify_applied(source, day)

    def _apply(self, partition: DayPartition) -> None:
        """Fold one partition into its scope state.

        Signature matching runs for every row *before* any state
        mutation, so a partition with unreadable rows raises without
        half-applying — a clean redelivery later reconciles exactly.
        """
        batch = partition.batch
        if batch is not None:
            self._apply_batch(partition, batch)
            return
        cursor = self._cursors[partition.source]
        scope = self._scopes[SCOPE_OF_SOURCE[partition.source]]
        match = self.catalog.match
        cache = self._match_cache
        day = partition.day
        rows: List[Tuple[str, str, Dict[str, FrozenSet[RefType]]]] = []
        for observation in partition.observations:
            key = (
                observation.ns_names,
                observation.www_cnames,
                observation.asns,
            )
            matches = cache.get(key)
            if matches is None:
                matches = cache[key] = match(observation)
            rows.append((observation.domain, observation.tld, matches))
        cursor.zone_sizes[day] = partition.zone_size
        for domain, tld, matches in rows:
            scope.observe(domain, tld, day, matches)
        if self._sketches is not None:
            plane = self._sketches
            sketch_scope = plane.scope(
                SCOPE_OF_SOURCE[partition.source]
            )
            for (domain, tld, matches), observation in zip(
                rows, partition.observations
            ):
                third = (
                    ()
                    if matches
                    else plane.third_party_keys(
                        observation.ns_names, observation.www_cnames
                    )
                )
                sketch_scope.observe(domain, day, matches, third)
        self.partitions_applied += 1

    def _apply_batch(
        self, partition: DayPartition, batch: ObservationBatch
    ) -> None:
        """The columnar :meth:`_apply`: no per-row boxing on a hit.

        Rows are first deduplicated by the batch's pool-relative match
        key (cheap int-tuple hashing), then each distinct key falls back
        to the persistent text-keyed match cache — pool ids are
        batch-builder-local and never survive a resume, so the
        persistent memo stays keyed by the text tuples. A row view is
        materialised only for genuinely new signatures. State mutation
        order (zone size, then rows in partition order) matches the row
        path exactly, so either path yields identical engine state.
        """
        cursor = self._cursors[partition.source]
        scope = self._scopes[SCOPE_OF_SOURCE[partition.source]]
        match = self.catalog.match
        cache = self._match_cache
        day = partition.day
        names = batch.names
        by_key: Dict[MatchKey, Dict[str, FrozenSet[RefType]]] = {}
        rows: List[Tuple[str, str, Dict[str, FrozenSet[RefType]]]] = []
        for index in range(len(batch)):
            id_key = batch.match_key(index)
            matches = by_key.get(id_key)
            if matches is None:
                text_key = (
                    batch.ns_texts(index),
                    batch.cname_texts(index),
                    batch.asn_set(index),
                )
                matches = cache.get(text_key)
                if matches is None:
                    matches = match(batch.row(index))
                    cache[text_key] = matches
                by_key[id_key] = matches
            rows.append(
                (
                    names.value(batch.domains[index]),
                    names.value(batch.tlds[index]),
                    matches,
                )
            )
        cursor.zone_sizes[day] = partition.zone_size
        for domain, tld, matches in rows:
            scope.observe(domain, tld, day, matches)
        if self._sketches is not None:
            plane = self._sketches
            sketch_scope = plane.scope(
                SCOPE_OF_SOURCE[partition.source]
            )
            # Third-party keys depend only on the NS/CNAME texts, so
            # the per-batch match key dedups their extraction exactly
            # like the signature-match memo above.
            third_by_key: Dict[MatchKey, Tuple[str, ...]] = {}
            for index, (domain, tld, matches) in enumerate(rows):
                if matches:
                    sketch_scope.observe(domain, day, matches, ())
                    continue
                id_key = batch.match_key(index)
                third = third_by_key.get(id_key)
                if third is None:
                    third = plane.third_party_keys(
                        batch.ns_texts(index),
                        batch.cname_texts(index),
                    )
                    third_by_key[id_key] = third
                sketch_scope.observe(domain, day, matches, third)
        self.partitions_applied += 1

    def _apply_or_quarantine(self, partition: DayPartition) -> bool:
        """Apply a partition; a poisoned one quarantines its scope.

        This is the designed containment point of the ingest path: any
        failure to read a partition's rows escalates to a scope
        quarantine (recorded, releasable) instead of killing the run.
        """
        try:
            self._apply(partition)
        except Exception as exc:  # repro: ignore[swallowed-exception]
            self.quarantine_scope(
                SCOPE_OF_SOURCE[partition.source],
                f"poisoned partition ({partition.source}, "
                f"{partition.day}): {exc}",
            )
            return False
        return True

    # -- scope quarantine ----------------------------------------------------

    def quarantine_scope(self, scope: str, reason: str) -> None:
        """Quarantine *scope*: drop its partitions until released.

        Idempotent — the first reason sticks.
        """
        if scope not in self._scopes:
            raise ValueError(f"unknown scope {scope!r}")
        self._quarantined.setdefault(scope, reason)

    def release_quarantine(self, scope: str) -> str:
        """Lift *scope*'s quarantine; returns the recorded reason.

        Days dropped while quarantined remain holes: a re-delivered
        partition for one reconciles as a late arrival, so replaying the
        dropped days heals the scope to exactly the clean state.
        """
        reason = self._quarantined.pop(scope, None)
        if reason is None:
            raise ValueError(f"scope {scope!r} is not quarantined")
        return reason

    def is_quarantined(self, scope: str) -> bool:
        return scope in self._quarantined

    @property
    def quarantined_scopes(self) -> Dict[str, str]:
        """scope → reason, for every currently quarantined scope."""
        return dict(sorted(self._quarantined.items()))

    @staticmethod
    def _duplicate(source: str, day: int, on_duplicate: str) -> str:
        if on_duplicate == "skip":
            return DUPLICATE
        raise ValueError(f"({source}, {day}) already ingested")

    def ingest_feed(
        self,
        partitions: Iterable[DayPartition],
        on_duplicate: str = "raise",
        skip_gaps: bool = False,
    ) -> int:
        """Ingest every partition of an iterable; returns #applied.

        With ``skip_gaps`` any days still blocking a source's quarantine
        buffer afterwards are declared missing via :meth:`skip_missing`
        — a feed that skipped unreadable partitions would otherwise
        stall its source forever.
        """
        before = self.partitions_applied
        for partition in partitions:
            self.ingest(partition, on_duplicate=on_duplicate)
        if skip_gaps:
            for source in self.sources:
                while self._cursors[source].quarantine:
                    self.skip_missing(source)
        return self.partitions_applied - before

    # -- ingest introspection -----------------------------------------------

    def next_day(self, source: str) -> Optional[int]:
        return self._cursors[source].next_day

    def resume_day(self, source: str) -> Optional[int]:
        """Where a replayed feed should restart for *source*."""
        cursor = self._cursors[source]
        if cursor.next_day is not None:
            return cursor.next_day
        window = self._windows.get(source)
        return window[0] if window else None

    def pending_days(self, source: str) -> List[int]:
        """Quarantined (not yet applicable) days of *source*."""
        return sorted(self._cursors[source].quarantine)

    def missing_days(self, source: str) -> List[int]:
        """Days declared missing and still unreconciled."""
        return sorted(self._cursors[source].holes)

    def latest_day(self, scope: str = "gtld") -> Optional[int]:
        """The most recent fully ingested day of *scope*'s sources."""
        days: List[int] = []
        for source in self.sources:
            if SCOPE_OF_SOURCE[source] != scope:
                continue
            next_day = self._cursors[source].next_day
            if next_day is not None:
                days.append(next_day)
        if not days:
            return None
        return min(days) - 1

    def scope(self, name: str = "gtld") -> ScopeState:
        return self._scopes[name]

    @property
    def sketches(self) -> Optional[SketchPlane]:
        """The streaming sketch plane (None unless configured)."""
        return self._sketches

    @property
    def scope_names(self) -> List[str]:
        return list(self._scopes)

    # -- live queries --------------------------------------------------------

    def adoption(
        self, provider: str, day: Optional[int] = None, scope: str = "gtld"
    ) -> int:
        """Distinct SLDs using *provider* on *day* (default: latest)."""
        if day is None:
            day = self.latest_day(scope)
            if day is None or day < 0:
                return 0
        return self._scopes[scope].adoption(provider, day)

    def any_adoption(
        self, day: Optional[int] = None, scope: str = "gtld"
    ) -> int:
        if day is None:
            day = self.latest_day(scope)
            if day is None or day < 0:
                return 0
        return self._scopes[scope].any_adoption(day)

    def detection(self, scope: str = "gtld") -> DetectionResult:
        """The batch-equivalent detection result for *scope*."""
        return self._scopes[scope].result()

    def domain_history(
        self, name: str
    ) -> Dict[str, Dict[str, List[UseInterval]]]:
        """scope → provider → use intervals for one domain."""
        history: Dict[str, Dict[str, List[UseInterval]]] = {}
        for scope_name, state in sorted(self._scopes.items()):
            intervals = state.domain_intervals(name)
            if intervals:
                history[scope_name] = intervals
        return history

    def zone_size_series(self, source: str) -> List[int]:
        """Daily listing size of *source* (0 where not yet ingested)."""
        sizes = [0] * self.horizon
        for day, size in sorted(self._cursors[source].zone_sizes.items()):
            sizes[day] = size
        return sizes

    def expansion_series(self) -> List[int]:
        """Combined gTLD zone size per day (the Fig. 5 baseline)."""
        combined = [0] * self.horizon
        for source in GTLD_SOURCES:
            if source not in self._cursors:
                continue
            for day, size in sorted(self._cursors[source].zone_sizes.items()):
                combined[day] += size
        return combined

    # -- derived aggregates (Figs. 4–6) --------------------------------------

    def _scope_extent(self, scope: str) -> Tuple[int, int]:
        """``[start, end)`` of the days every source of *scope* covered."""
        starts: List[int] = []
        ends: List[int] = []
        for source in self.sources:
            if SCOPE_OF_SOURCE[source] != scope:
                continue
            cursor = self._cursors[source]
            if cursor.next_day is None or cursor.start is None:
                window = self._windows.get(source)
                starts.append(window[0] if window else 0)
                ends.append(window[0] if window else 0)
            else:
                starts.append(cursor.start)
                ends.append(cursor.next_day)
        if not starts:
            raise ValueError(f"no sources feed scope {scope!r}")
        start, end = min(starts), min(ends)
        if end <= start:
            raise ValueError(f"scope {scope!r} has no ingested days")
        return start, end

    def growth(self, source: str) -> Dict[str, GrowthSeries]:
        """Growth series for *source*: ``gtld`` (Fig. 5), ``nl`` or
        ``alexa`` (Fig. 6), from the accumulated daily aggregates.

        With the full horizon ingested these equal the batch study's
        ``growth_gtld`` / ``growth_cc`` entries exactly; mid-stream they
        cover the ingested extent.
        """
        if source == "gtld":
            start, end = self._scope_extent("gtld")
            adoption = self._scopes["gtld"].any_series()[start:end]
            expansion = self.expansion_series()[start:end]
            return self._growth.compare(
                {
                    "DPS adoption": adoption,
                    "Overall expansion": expansion,
                }
            )
        if source == "nl":
            start, end = self._scope_extent("nl")
            return self._growth.compare(
                {
                    "DPS adoption (.nl)": (
                        self._scopes["nl"].any_series()[start:end]
                    ),
                    "Overall expansion (.nl)": (
                        self.zone_size_series("nl")[start:end]
                    ),
                }
            )
        if source == "alexa":
            start, end = self._scope_extent("alexa")
            return self._growth.compare(
                {
                    "DPS adoption (Alexa)": (
                        self._scopes["alexa"].any_series()[start:end]
                    ),
                }
            )
        raise ValueError(f"unknown growth source {source!r}")

    def fig4_distributions(self) -> Tuple[Dict[str, float], Dict[str, float]]:
        """``(namespace_distribution, dps_distribution)`` over the gTLDs."""
        zone_averages: Dict[str, float] = {}
        use_averages: Dict[str, float] = {}
        gtld = self._scopes["gtld"]
        for source in GTLD_SOURCES:
            sizes = self.zone_size_series(source)
            zone_averages[source] = sum(sizes) / max(1, len(sizes))
            series = gtld.tld_series(source)
            use_averages[source] = sum(series) / max(1, len(series))
        zone_total = sum(zone_averages.values()) or 1.0
        use_total = sum(use_averages.values()) or 1.0
        return (
            {tld: value / zone_total for tld, value in zone_averages.items()},
            {tld: value / use_total for tld, value in use_averages.items()},
        )

    def flux(self, scope: str = "gtld") -> Dict[str, FluxSeries]:
        """Per-provider flux (Fig. 7) from the live interval state."""
        state = self._scopes[scope]
        return FluxAnalysis(self.horizon).analyze_intervals(
            state.intervals(), state.provider_names
        )

    def peaks(self, scope: str = "gtld") -> Dict[str, PeakStats]:
        """Per-provider peak stats (Fig. 8) from the live interval state."""
        state = self._scopes[scope]
        return PeakAnalysis(self.horizon).analyze_intervals(
            state.intervals(), state.provider_names
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-compatible engine state (checkpoint payload)."""
        return {
            "horizon": self.horizon,
            "sources": list(self.sources),
            "windows": {
                source: list(window)
                for source, window in sorted(self._windows.items())
            },
            "scopes": {
                name: state.to_dict()
                for name, state in sorted(self._scopes.items())
            },
            "cursors": {
                source: {
                    "start": cursor.start,
                    "next_day": cursor.next_day,
                    "holes": sorted(cursor.holes),
                    "quarantine": [
                        _partition_to_dict(cursor.quarantine[day])
                        for day in sorted(cursor.quarantine)
                    ],
                    "zone_sizes": [
                        [day, size]
                        for day, size in sorted(cursor.zone_sizes.items())
                    ],
                }
                for source, cursor in sorted(self._cursors.items())
            },
            "quarantined_scopes": dict(sorted(self._quarantined.items())),
            "partitions_applied": self.partitions_applied,
            "late_arrivals": self.late_arrivals,
            "partitions_dropped": self.partitions_dropped,
            "sketches": (
                self._sketches.to_dict()
                if self._sketches is not None
                else None
            ),
        }

    @classmethod
    def from_dict(
        cls,
        payload: Mapping[str, Any],
        catalog: Optional[SignatureCatalog] = None,
    ) -> "StreamEngine":
        engine = cls(
            horizon=int(payload["horizon"]),
            catalog=catalog,
            sources=payload["sources"],
            windows={
                source: (int(window[0]), int(window[1]))
                for source, window in sorted(payload["windows"].items())
            },
        )
        engine._scopes = {
            name: ScopeState.from_dict(state)
            for name, state in sorted(payload["scopes"].items())
        }
        for source, data in sorted(payload["cursors"].items()):
            cursor = engine._cursors[source]
            cursor.start = data["start"]
            cursor.next_day = data["next_day"]
            cursor.holes = set(data["holes"])
            cursor.quarantine = {
                partition["day"]: _partition_from_dict(partition)
                for partition in data["quarantine"]
            }
            cursor.zone_sizes = {
                day: size for day, size in data["zone_sizes"]
            }
        engine._quarantined = dict(
            sorted(payload.get("quarantined_scopes", {}).items())
        )
        engine.partitions_applied = int(payload["partitions_applied"])
        engine.late_arrivals = int(payload["late_arrivals"])
        engine.partitions_dropped = int(
            payload.get("partitions_dropped", 0)
        )
        sketches = payload.get("sketches")
        engine._sketches = (
            SketchPlane.from_dict(sketches)
            if sketches is not None
            else None
        )
        return engine


def _partition_to_dict(partition: DayPartition) -> Dict[str, object]:
    return {
        "source": partition.source,
        "day": partition.day,
        "zone_size": partition.zone_size,
        "observations": [
            {
                "day": observation.day,
                "domain": observation.domain,
                "tld": observation.tld,
                "ns_names": list(observation.ns_names),
                "apex_addrs": list(observation.apex_addrs),
                "www_cnames": list(observation.www_cnames),
                "www_addrs": list(observation.www_addrs),
                "apex_addrs6": list(observation.apex_addrs6),
                "www_addrs6": list(observation.www_addrs6),
                "asns": sorted(observation.asns),
            }
            for observation in partition.observations
        ],
    }


def _partition_from_dict(payload: Mapping[str, Any]) -> DayPartition:
    return DayPartition(
        source=payload["source"],
        day=int(payload["day"]),
        zone_size=int(payload["zone_size"]),
        observations=[
            # Checkpoint decode is row-shaped by format; cold path.
            DomainObservation(  # repro: ignore[row-boxing-in-hot-path]
                day=int(row["day"]),
                domain=row["domain"],
                tld=row["tld"],
                ns_names=tuple(row["ns_names"]),
                apex_addrs=tuple(row["apex_addrs"]),
                www_cnames=tuple(row["www_cnames"]),
                www_addrs=tuple(row["www_addrs"]),
                apex_addrs6=tuple(row["apex_addrs6"]),
                www_addrs6=tuple(row["www_addrs6"]),
                asns=frozenset(row["asns"]),
            )
            for row in payload["observations"]
        ],
    )
