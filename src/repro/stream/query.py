"""The live adoption query API over a running stream engine.

:class:`QueryAPI` is the read side of the subsystem: the exact calls the
issue tracker of a monitoring deployment would make against the always-on
engine — current adoption counters, growth-to-date, one domain's
protection history — without touching ingest state.

When a read-optimized snapshot index is attached (the serve plane's
:class:`repro.serve.index.SnapshotSwapper`), the point-lookup reads are
routed through it instead of walking live engine state, so the served
path and the in-process path answer from one implementation and cannot
drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol

from repro.core.detection import UseInterval
from repro.core.growth import GrowthSeries
from repro.stream.engine import StreamEngine


@dataclass(frozen=True)
class LiveSnapshot:
    """One scope's counters as of its latest fully ingested day."""

    scope: str
    day: Optional[int]
    domains_seen: int
    any_use: int
    providers: Dict[str, int]

    def top_providers(self, limit: int = 5) -> List[str]:
        return sorted(
            self.providers, key=lambda p: (-self.providers[p], p)
        )[:limit]

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-compatible form (shared with the serve protocol).

        Keys are stable and provider counters are emitted sorted by name,
        so two equal snapshots always encode to identical bytes under
        :func:`repro.serve.protocol.canonical_json`.
        """
        return {
            "scope": self.scope,
            "day": self.day,
            "domains_seen": self.domains_seen,
            "any_use": self.any_use,
            "providers": {
                provider: self.providers[provider]
                for provider in sorted(self.providers)
            },
        }


@dataclass(frozen=True)
class DomainHistory:
    """Everything the engine knows about one domain's protection."""

    domain: str
    #: scope → provider → maximal use intervals.
    intervals: Dict[str, Dict[str, List[UseInterval]]]

    @property
    def providers(self) -> List[str]:
        names = {
            provider
            for by_provider in self.intervals.values()
            for provider in by_provider
        }
        return sorted(names)

    @property
    def scopes(self) -> List[str]:
        return sorted(self.intervals)

    def total_days(self, scope: str = "gtld") -> int:
        """Summed interval days across *scope*'s providers.

        A scope with no recorded protection (including one this history
        has never seen) contributes 0 days.
        """
        by_provider = self.intervals.get(scope, {})
        return sum(
            interval.days
            for intervals in by_provider.values()
            for interval in intervals
        )


class SnapshotIndex(Protocol):
    """The reads :class:`QueryAPI` can route through a serve index.

    Structural: :class:`repro.serve.index.ServeIndex` satisfies it
    without this module importing the serve plane (which imports this
    one).
    """

    def live_snapshot(self, scope: str) -> LiveSnapshot:
        ...

    def history(
        self, domain: str
    ) -> Dict[str, Dict[str, List[UseInterval]]]:
        ...

    def adoption(
        self, provider: str, day: Optional[int], scope: str
    ) -> int:
        ...


class QueryAPI:
    """Read-only adoption queries against a :class:`StreamEngine`.

    *index_source*, when given, is a zero-argument callable returning the
    current immutable :class:`SnapshotIndex` (typically
    ``SnapshotSwapper.current_index``); snapshot, adoption and
    domain-history reads then come from the index instead of live engine
    state. Growth stays on the engine — it is not part of the serve
    read path.
    """

    def __init__(
        self,
        engine: StreamEngine,
        index_source: Optional[Callable[[], SnapshotIndex]] = None,
    ):
        self._engine = engine
        self._index_source = index_source

    @property
    def engine(self) -> StreamEngine:
        return self._engine

    def _index(self) -> Optional[SnapshotIndex]:
        if self._index_source is None:
            return None
        return self._index_source()

    def adoption(
        self, provider: str, day: Optional[int] = None, scope: str = "gtld"
    ) -> int:
        """Distinct SLDs using *provider* on *day* (default: latest)."""
        index = self._index()
        if index is not None:
            return index.adoption(provider, day, scope)
        return self._engine.adoption(provider, day=day, scope=scope)

    def growth(self, source: str) -> Dict[str, GrowthSeries]:
        """Growth-to-date for ``gtld``, ``nl`` or ``alexa``."""
        return self._engine.growth(source)

    def domain_history(self, name: str) -> DomainHistory:
        """The engine's full protection history for one domain."""
        index = self._index()
        if index is not None:
            return DomainHistory(domain=name, intervals=index.history(name))
        return DomainHistory(
            domain=name, intervals=self._engine.domain_history(name)
        )

    def snapshot(self, scope: str = "gtld") -> LiveSnapshot:
        """Current counters for *scope* (what the CLI tail prints)."""
        index = self._index()
        if index is not None:
            return index.live_snapshot(scope)
        engine = self._engine
        state = engine.scope(scope)
        day = engine.latest_day(scope)
        if day is None or day < 0:
            return LiveSnapshot(
                scope=scope,
                day=None,
                domains_seen=state.domains_seen,
                any_use=0,
                providers={
                    provider: 0 for provider in state.provider_names
                },
            )
        return LiveSnapshot(
            scope=scope,
            day=day,
            domains_seen=state.domains_seen,
            any_use=state.any_adoption(day),
            providers={
                provider: state.adoption(provider, day)
                for provider in state.provider_names
            },
        )
