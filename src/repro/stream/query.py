"""The live adoption query API over a running stream engine.

:class:`QueryAPI` is the read side of the subsystem: the exact calls the
issue tracker of a monitoring deployment would make against the always-on
engine — current adoption counters, growth-to-date, one domain's
protection history — without touching ingest state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.detection import UseInterval
from repro.core.growth import GrowthSeries
from repro.stream.engine import StreamEngine


@dataclass(frozen=True)
class LiveSnapshot:
    """One scope's counters as of its latest fully ingested day."""

    scope: str
    day: Optional[int]
    domains_seen: int
    any_use: int
    providers: Dict[str, int]

    def top_providers(self, limit: int = 5) -> List[str]:
        return sorted(
            self.providers, key=lambda p: (-self.providers[p], p)
        )[:limit]


@dataclass(frozen=True)
class DomainHistory:
    """Everything the engine knows about one domain's protection."""

    domain: str
    #: scope → provider → maximal use intervals.
    intervals: Dict[str, Dict[str, List[UseInterval]]]

    @property
    def providers(self) -> List[str]:
        names = {
            provider
            for by_provider in self.intervals.values()
            for provider in by_provider
        }
        return sorted(names)

    def total_days(self, scope: str = "gtld") -> int:
        return sum(
            interval.days
            for by_provider in (
                [self.intervals[scope]] if scope in self.intervals else []
            )
            for intervals in by_provider.values()
            for interval in intervals
        )


class QueryAPI:
    """Read-only adoption queries against a :class:`StreamEngine`."""

    def __init__(self, engine: StreamEngine):
        self._engine = engine

    @property
    def engine(self) -> StreamEngine:
        return self._engine

    def adoption(
        self, provider: str, day: Optional[int] = None, scope: str = "gtld"
    ) -> int:
        """Distinct SLDs using *provider* on *day* (default: latest)."""
        return self._engine.adoption(provider, day=day, scope=scope)

    def growth(self, source: str) -> Dict[str, GrowthSeries]:
        """Growth-to-date for ``gtld``, ``nl`` or ``alexa``."""
        return self._engine.growth(source)

    def domain_history(self, name: str) -> DomainHistory:
        """The engine's full protection history for one domain."""
        return DomainHistory(
            domain=name, intervals=self._engine.domain_history(name)
        )

    def snapshot(self, scope: str = "gtld") -> LiveSnapshot:
        """Current counters for *scope* (what the CLI tail prints)."""
        engine = self._engine
        state = engine.scope(scope)
        day = engine.latest_day(scope)
        if day is None or day < 0:
            return LiveSnapshot(
                scope=scope,
                day=None,
                domains_seen=state.domains_seen,
                any_use=0,
                providers={
                    provider: 0 for provider in state.provider_names
                },
            )
        return LiveSnapshot(
            scope=scope,
            day=day,
            domains_seen=state.domains_seen,
            any_use=state.any_adoption(day),
            providers={
                provider: state.adoption(provider, day)
                for provider in state.provider_names
            },
        )
