"""repro — a reproduction of *Measuring the Adoption of DDoS Protection
Services* (Jonker et al., IMC 2016).

The library has three layers:

* **Substrates** — a self-contained DNS implementation
  (:mod:`repro.dnscore`), a BGP-flavoured routing layer with Routeviews
  pfx2as snapshots (:mod:`repro.routing`), and a calibrated simulated
  internet (:mod:`repro.world`) standing in for the zones, providers, and
  third parties the paper measured.
* **Measurement** — an OpenINTEL-style active-DNS platform
  (:mod:`repro.measurement`) and a local MapReduce engine
  (:mod:`repro.mapreduce`) as the Hadoop stand-in.
* **Methodology** — the paper's detection, classification, growth, flux,
  peak, fingerprint, and attribution analyses (:mod:`repro.core`), plus
  terminal reporting for every table and figure (:mod:`repro.reporting`).

Quickstart::

    from repro.world import build_paper_world, ScenarioConfig
    from repro.core import AdoptionStudy

    world = build_paper_world(ScenarioConfig(scale=8000))
    results = AdoptionStudy(world).run()
    print(results.provider_growth_factor())   # ≈ 1.24
"""

from repro.core.pipeline import AdoptionStudy, StudyResults
from repro.core.references import SignatureCatalog
from repro.world.scenario import ScenarioConfig, build_paper_world

__version__ = "1.0.0"

__all__ = [
    "AdoptionStudy",
    "ScenarioConfig",
    "SignatureCatalog",
    "StudyResults",
    "__version__",
    "build_paper_world",
]
