"""Routeviews-style prefix-to-AS mappings (the CAIDA *pfx2as* format).

The text format is one mapping per line: ``prefix <TAB> length <TAB> asn``,
where multi-origin prefixes render the origin set joined with ``_``
(e.g. ``3549_3356``), exactly as in the CAIDA Routeviews data set the paper
consumes. :meth:`Pfx2As.lookup` returns all origins of the most-specific
covering prefix, which is the paper's §3.2 supplementation rule.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Optional, Union

from repro.routing.prefixtrie import IPAddress, IPNetwork, PrefixTrie


@dataclass(frozen=True)
class Pfx2AsEntry:
    """One mapping row: a prefix and its origin AS set."""

    prefix: IPNetwork
    origins: FrozenSet[int]

    def __post_init__(self) -> None:
        if not self.origins:
            raise ValueError("a pfx2as entry needs at least one origin")
        object.__setattr__(self, "origins", frozenset(self.origins))

    def is_moas(self) -> bool:
        """True when this prefix has multiple origin ASes."""
        return len(self.origins) > 1

    def to_line(self) -> str:
        asn_field = "_".join(str(a) for a in sorted(self.origins))
        return (
            f"{self.prefix.network_address}\t{self.prefix.prefixlen}"
            f"\t{asn_field}"
        )

    @classmethod
    def from_line(cls, line: str) -> "Pfx2AsEntry":
        fields = line.rstrip("\n").split("\t")
        if len(fields) != 3:
            raise ValueError(f"malformed pfx2as line {line!r}")
        address, length, asn_field = fields
        prefix = ipaddress.ip_network(f"{address}/{length}", strict=True)
        origins = frozenset(int(part) for part in asn_field.split("_"))
        return cls(prefix, origins)


class Pfx2As:
    """An immutable prefix → origin-AS-set mapping with LPM lookup."""

    def __init__(self, entries: Iterable[Pfx2AsEntry] = ()):
        self._trie: PrefixTrie[FrozenSet[int]] = PrefixTrie()
        self._entries: List[Pfx2AsEntry] = []
        for entry in entries:
            existing = self._trie.get(entry.prefix)
            if existing is not None:
                merged = Pfx2AsEntry(entry.prefix, existing | entry.origins)
                self._entries = [
                    e for e in self._entries if e.prefix != entry.prefix
                ]
                entry = merged
            self._trie.insert(entry.prefix, entry.origins)
            self._entries.append(entry)

    def lookup(
        self, address: Union[str, IPAddress]
    ) -> FrozenSet[int]:
        """Origins of the most-specific prefix containing *address*.

        Returns the empty set for unrouted addresses. Multi-origin prefixes
        yield every origin (the paper attaches all involved AS numbers).
        """
        match = self._trie.longest_match(address)
        if match is None:
            return frozenset()
        return match[1]

    def lookup_prefix(
        self, address: Union[str, IPAddress]
    ) -> Optional[IPNetwork]:
        """The most-specific covering prefix itself, or None."""
        match = self._trie.longest_match(address)
        return match[0] if match else None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Pfx2AsEntry]:
        return iter(
            sorted(
                self._entries,
                key=lambda e: (
                    e.prefix.version,
                    int(e.prefix.network_address),
                    e.prefix.prefixlen,
                ),
            )
        )

    def moas_entries(self) -> List[Pfx2AsEntry]:
        """All multi-origin entries."""
        return [entry for entry in self if entry.is_moas()]

    # -- serialization ------------------------------------------------------

    def to_text(self) -> str:
        """Serialize to the Routeviews text format."""
        return "\n".join(entry.to_line() for entry in self) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "Pfx2As":
        entries = [
            Pfx2AsEntry.from_line(line)
            for line in text.splitlines()
            if line.strip() and not line.startswith("#")
        ]
        return cls(entries)
