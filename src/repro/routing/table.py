"""A BGP-flavoured routing table: announcements, withdrawals, MOAS.

The table records which origin AS(es) announce each prefix on each day.
Multi-origin announcements (the same prefix announced by several ASes) are
kept as a set, matching the paper's note that "for multi-origin AS we add
all the involved AS numbers" (§3.2). A snapshot of the table exports the
Routeviews-style :class:`~repro.routing.pfx2as.Pfx2As` mapping used by the
measurement platform's enrichment stage.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Set, Union

from repro.routing.prefixtrie import IPAddress, IPNetwork, PrefixTrie
from repro.routing.pfx2as import Pfx2As, Pfx2AsEntry


@dataclass(frozen=True)
class RouteAnnouncement:
    """One (prefix, origin AS) pair present in the table."""

    prefix: IPNetwork
    origin: int

    def __str__(self) -> str:
        return f"{self.prefix} via AS{self.origin}"


class RoutingTable:
    """Tracks announced prefixes and their origin AS sets."""

    def __init__(self) -> None:
        self._trie: PrefixTrie[Set[int]] = PrefixTrie()
        self.announcements_processed = 0
        self.withdrawals_processed = 0

    @staticmethod
    def _coerce(prefix: Union[str, IPNetwork]) -> IPNetwork:
        if isinstance(prefix, str):
            return ipaddress.ip_network(prefix, strict=True)
        return prefix

    def announce(self, prefix: Union[str, IPNetwork], origin: int) -> None:
        """AS *origin* announces *prefix* (idempotent per origin)."""
        network = self._coerce(prefix)
        origins = self._trie.get(network)
        if origins is None:
            self._trie.insert(network, {origin})
        else:
            origins.add(origin)
        self.announcements_processed += 1

    def withdraw(
        self, prefix: Union[str, IPNetwork], origin: Optional[int] = None
    ) -> bool:
        """Withdraw *prefix* (for one origin, or entirely when None)."""
        network = self._coerce(prefix)
        origins = self._trie.get(network)
        if origins is None:
            return False
        if origin is None:
            origins.clear()
        else:
            origins.discard(origin)
        if not origins:
            self._trie.remove(network)
        self.withdrawals_processed += 1
        return True

    def origins_for_prefix(
        self, prefix: Union[str, IPNetwork]
    ) -> FrozenSet[int]:
        """Origin set announced for exactly *prefix* (may be empty)."""
        origins = self._trie.get(self._coerce(prefix))
        return frozenset(origins) if origins else frozenset()

    def origins_for_address(
        self, address: Union[str, IPAddress]
    ) -> FrozenSet[int]:
        """Origins of the most-specific prefix containing *address*."""
        match = self._trie.longest_match(address)
        if match is None:
            return frozenset()
        return frozenset(match[1])

    def most_specific(
        self, address: Union[str, IPAddress]
    ) -> Optional[RouteAnnouncement]:
        """The covering route with the lowest-numbered origin, if any."""
        match = self._trie.longest_match(address)
        if match is None:
            return None
        prefix, origins = match
        return RouteAnnouncement(prefix, min(origins))

    def routes(self) -> Iterator[RouteAnnouncement]:
        """All (prefix, origin) pairs currently in the table."""
        for prefix, origins in self._trie.items():
            for origin in sorted(origins):
                yield RouteAnnouncement(prefix, origin)

    def __len__(self) -> int:
        return len(self._trie)

    def snapshot_pfx2as(self) -> Pfx2As:
        """Export the current table as a Routeviews-style pfx2as mapping."""
        entries: List[Pfx2AsEntry] = []
        for prefix, origins in self._trie.items():
            entries.append(Pfx2AsEntry(prefix, frozenset(origins)))
        return Pfx2As(entries)
