"""BGP-flavoured routing substrate.

The paper supplements every measured IP address with an origin AS using
Routeviews *pfx2as* data: "The origin AS of the most-specific prefix in
which an address was contained at measurement time" (§3.2), attaching all
origins for multi-origin (MOAS) prefixes. This package provides the pieces
needed to simulate and to consume that data: an AS registry with names, a
binary radix trie with longest-prefix match, a routing table with
announce/withdraw semantics and MOAS tracking, and pfx2as snapshots in the
Routeviews text format.
"""

from repro.routing.asn import ASRegistry, AutonomousSystem
from repro.routing.prefixtrie import PrefixTrie
from repro.routing.table import RouteAnnouncement, RoutingTable
from repro.routing.pfx2as import Pfx2As, Pfx2AsEntry

__all__ = [
    "ASRegistry",
    "AutonomousSystem",
    "Pfx2As",
    "Pfx2AsEntry",
    "PrefixTrie",
    "RouteAnnouncement",
    "RoutingTable",
]
