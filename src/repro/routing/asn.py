"""Autonomous-system registry: numbers, names, and allocation.

The paper's fingerprint bootstrap (§3.3) starts from "AS-to-name data to
find a DPS's AS numbers"; :meth:`ASRegistry.find_by_name` is that lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


@dataclass(frozen=True)
class AutonomousSystem:
    """A single AS: its number and registered organisation name."""

    number: int
    name: str

    def __post_init__(self) -> None:
        if not 0 < self.number < 2**32:
            raise ValueError(f"invalid AS number {self.number}")

    def __str__(self) -> str:
        return f"AS{self.number} ({self.name})"


class ASRegistry:
    """Allocates and indexes autonomous systems."""

    def __init__(self, first_number: int = 64496):
        # Default range starts in the RFC 5398 documentation ASN block.
        self._next_number = first_number
        self._by_number: Dict[int, AutonomousSystem] = {}

    def register(
        self, name: str, number: Optional[int] = None
    ) -> AutonomousSystem:
        """Register an AS, allocating the next free number if unspecified."""
        if number is None:
            while self._next_number in self._by_number:
                self._next_number += 1
            number = self._next_number
            self._next_number += 1
        if number in self._by_number:
            raise ValueError(f"AS{number} is already registered")
        autonomous_system = AutonomousSystem(number, name)
        self._by_number[number] = autonomous_system
        return autonomous_system

    def get(self, number: int) -> Optional[AutonomousSystem]:
        return self._by_number.get(number)

    def name_of(self, number: int) -> str:
        autonomous_system = self._by_number.get(number)
        return autonomous_system.name if autonomous_system else f"AS{number}"

    def find_by_name(self, fragment: str) -> List[AutonomousSystem]:
        """All ASes whose name contains *fragment* (case-insensitive).

        This is the "AS-to-name data" step the paper uses to seed a DPS
        provider's AS number list.
        """
        needle = fragment.lower()
        return sorted(
            (
                autonomous_system
                for autonomous_system in self._by_number.values()
                if needle in autonomous_system.name.lower()
            ),
            key=lambda a: a.number,
        )

    def __iter__(self) -> Iterator[AutonomousSystem]:
        return iter(sorted(self._by_number.values(), key=lambda a: a.number))

    def __len__(self) -> int:
        return len(self._by_number)

    def __contains__(self, number: int) -> bool:
        return number in self._by_number
