"""A binary radix trie over IP prefixes with longest-prefix match.

Keys are :class:`ipaddress.IPv4Network`/``IPv6Network`` objects; IPv4 and
IPv6 live in separate tries internally (their bit-spaces differ). Lookup
walks at most ``prefixlen`` nodes, so most-specific-prefix queries — the
core of pfx2as enrichment — are O(32)/O(128) regardless of table size.

On top of the walk sits a bounded LRU cache keyed by the packed address
integer: enrichment sweeps look the same provider/name-server addresses
up day after day, and a hit replaces the bit-walk with one dict probe.
The cache is invalidated wholesale on any :meth:`insert`/:meth:`remove`
(mutations are rare — tables are built once, queried millions of times).
"""

from __future__ import annotations

import ipaddress
from collections import OrderedDict
from typing import (
    Dict,
    Generic,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
    Union,
    cast,
)

IPNetwork = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]
IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]
V = TypeVar("V")

#: Default bound on the longest-match LRU cache (entries, per trie).
DEFAULT_LPM_CACHE_SIZE = 4096

#: Sentinel distinguishing "not cached" from a cached negative lookup.
_MISS: object = object()


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


def _bits_of(network: IPNetwork) -> Tuple[int, int]:
    """(address-as-int, prefixlen) for *network*."""
    return int(network.network_address), network.prefixlen


class PrefixTrie(Generic[V]):
    """Maps IP prefixes to values; supports exact and longest-prefix match."""

    def __init__(
        self, lpm_cache_size: int = DEFAULT_LPM_CACHE_SIZE
    ) -> None:
        if lpm_cache_size < 0:
            raise ValueError("lpm_cache_size must be >= 0")
        self._roots: Dict[int, _Node[V]] = {4: _Node(), 6: _Node()}
        self._sizes: Dict[int, int] = {4: 0, 6: 0}
        self._lpm_cache_size = lpm_cache_size
        self._lpm_cache: "OrderedDict[Tuple[int, int], Optional[Tuple[IPNetwork, V]]]" = (
            OrderedDict()
        )
        self.lpm_cache_hits = 0
        self.lpm_cache_misses = 0

    @staticmethod
    def _coerce(prefix: Union[str, IPNetwork]) -> IPNetwork:
        if isinstance(prefix, str):
            return ipaddress.ip_network(prefix, strict=True)
        return prefix

    def _walk_bits(self, network: IPNetwork) -> Iterator[int]:
        address, prefixlen = _bits_of(network)
        width = network.max_prefixlen
        for position in range(prefixlen):
            yield (address >> (width - 1 - position)) & 1

    # -- mutation ---------------------------------------------------------

    def insert(self, prefix: Union[str, IPNetwork], value: V) -> None:
        """Insert or replace the value at *prefix*."""
        self._lpm_cache.clear()
        network = self._coerce(prefix)
        node = self._roots[network.version]
        for bit in self._walk_bits(network):
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._sizes[network.version] += 1
        node.value = value
        node.has_value = True

    def remove(self, prefix: Union[str, IPNetwork]) -> bool:
        """Remove the value at exactly *prefix*; True if it existed."""
        self._lpm_cache.clear()
        network = self._coerce(prefix)
        node: Optional[_Node[V]] = self._roots[network.version]
        path: List[Tuple[_Node[V], int]] = []
        for bit in self._walk_bits(network):
            assert node is not None
            child = node.children[bit]
            if child is None:
                return False
            path.append((node, bit))
            node = child
        assert node is not None
        if not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._sizes[network.version] -= 1
        # Prune now-empty leaf chain.
        for parent, bit in reversed(path):
            child = parent.children[bit]
            if child is None:
                break
            if child.has_value or any(child.children):
                break
            parent.children[bit] = None
        return True

    # -- queries ---------------------------------------------------------------

    def get(self, prefix: Union[str, IPNetwork]) -> Optional[V]:
        """The value at exactly *prefix*, or None."""
        network = self._coerce(prefix)
        node: Optional[_Node[V]] = self._roots[network.version]
        for bit in self._walk_bits(network):
            assert node is not None
            node = node.children[bit]
            if node is None:
                return None
        assert node is not None
        return node.value if node.has_value else None

    def longest_match(
        self, address: Union[str, IPAddress]
    ) -> Optional[Tuple[IPNetwork, V]]:
        """The most-specific stored prefix containing *address*.

        Returns ``(prefix, value)`` or ``None``. This is the §3.2 operation:
        "the most-specific prefix in which an address was contained".

        Accepts a pre-parsed :data:`IPAddress` to skip text parsing on hot
        paths; results (including negative ones) are LRU-cached by the
        packed address integer until the next mutation.
        """
        if isinstance(address, str):
            address = ipaddress.ip_address(address)
        key = (address.version, int(address))
        if self._lpm_cache_size:
            cached = self._lpm_cache.get(key, _MISS)
            if cached is not _MISS:
                self._lpm_cache.move_to_end(key)
                self.lpm_cache_hits += 1
                return cast(
                    Optional[Tuple[IPNetwork, V]], cached
                )
        result = self._longest_match_walk(address)
        if self._lpm_cache_size:
            self.lpm_cache_misses += 1
            self._lpm_cache[key] = result
            if len(self._lpm_cache) > self._lpm_cache_size:
                self._lpm_cache.popitem(last=False)
        return result

    def _longest_match_walk(
        self, address: IPAddress
    ) -> Optional[Tuple[IPNetwork, V]]:
        width = address.max_prefixlen
        bits = int(address)
        node: Optional[_Node[V]] = self._roots[address.version]
        best: Optional[Tuple[int, V]] = None
        assert node is not None
        if node.has_value:
            best = (0, cast(V, node.value))  # a default route
        for position in range(width):
            bit = (bits >> (width - 1 - position)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.has_value:
                best = (position + 1, cast(V, node.value))
        if best is None:
            return None
        prefixlen, value = best
        if prefixlen:
            masked = bits >> (width - prefixlen) << (width - prefixlen)
        else:
            masked = 0
        factory = (
            ipaddress.IPv4Network
            if address.version == 4
            else ipaddress.IPv6Network
        )
        return factory((masked, prefixlen)), value

    def __contains__(self, prefix: Union[str, IPNetwork]) -> bool:
        return self.get(prefix) is not None

    def __len__(self) -> int:
        return self._sizes[4] + self._sizes[6]

    def items(self) -> Iterator[Tuple[IPNetwork, V]]:
        """All stored (prefix, value) pairs in trie (prefix) order."""
        for version, root in self._roots.items():
            factory = (
                ipaddress.IPv4Network if version == 4 else ipaddress.IPv6Network
            )
            width = 32 if version == 4 else 128
            stack: List[Tuple[_Node[V], int, int]] = [(root, 0, 0)]
            while stack:
                node, bits, depth = stack.pop()
                if node.has_value:
                    network = factory((bits << (width - depth), depth))
                    yield network, cast(V, node.value)
                for bit in (1, 0):
                    child = node.children[bit]
                    if child is not None:
                        stack.append((child, (bits << 1) | bit, depth + 1))
