"""A simulated elastic multi-node cluster backend.

:class:`ClusterBackend` models the execution shape of a real
multi-node deployment — explicit shard placement, workers joining and
leaving mid-run, work stealing for stragglers, speculative
re-execution of shards lost with their node — while every task still
runs in this process, so no result ever depends on OS scheduling.
Time is logical: each shard costs an integer number of *ticks* (a pure
function of its payload), and the scheduler advances tick by tick
through a deterministic event loop.

Why any join/leave schedule yields identical results:

* **Placement** is round-robin over the initially-live node ids in
  ascending order — a pure function of ``(shard_count, nodes)``.
* **Stealing** consumes a stable-hash-ordered steal queue: an idle
  node always takes the candidate shard minimizing
  ``(stable_hash("shard:i"), i)``, so which shard moves where depends
  only on costs and the schedule, never on iteration order of a set or
  dict.
* **Execution is deferred to completion**: a shard's task runs exactly
  once, at the tick its (possibly re-assigned) run completes. A shard
  lost to a node leave never half-ran — its speculative re-execution
  *is* its first execution, so per-shard side effects (fault-injection
  draws included) are identical to a serial run.
* **Crash recovery** reuses the platform's fault machinery: a task
  raising a retryable error (an injected
  :class:`~repro.faults.errors.WorkerCrash`) kills its node, and the
  shard re-executes through
  :func:`repro.faults.runtime.rerun_shard` under fault suppression —
  exactly the pool's parent-retry semantics — with attempts bounded
  and backoff-priced by :class:`repro.faults.retry.RetryPolicy`.
* **Results land by shard index**, so the merge order (and therefore
  the merged bytes) never sees the schedule at all.

``tests/parallel/test_backend_identity.py`` pins byte-identity of
study exports and sketch digests across schedules;
``tests/parallel/test_cluster.py`` drives random join/leave schedules
through hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Sized,
    Tuple,
    cast,
)

from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.faults.runtime import rerun_shard, shard_retryable
from repro.parallel.backend import Backend, BackendError, register_backend
from repro.parallel.executor import SHARDS_PER_WORKER
from repro.world.ipam import stable_hash

#: Event actions a schedule may script.
ACTIONS = ("join", "leave")


@dataclass(frozen=True)
class ClusterEvent:
    """One scripted membership change at a logical tick."""

    tick: int
    action: str  # "join" | "leave"
    node: int

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"action must be one of {ACTIONS}, not {self.action!r}"
            )
        if self.tick < 0:
            raise ValueError("tick must be >= 0")
        if self.node < 0:
            raise ValueError("node must be >= 0")


@dataclass(frozen=True)
class ClusterSchedule:
    """A scripted sequence of worker join/leave events.

    Events apply in ``(tick, leaves-before-joins, node)`` order, so a
    node leaving and another joining on the same tick always resolve
    the same way.
    """

    events: Tuple[ClusterEvent, ...] = ()

    @classmethod
    def scripted(
        cls, *events: Tuple[int, str, int]
    ) -> "ClusterSchedule":
        """``scripted((tick, "leave", node), ...)`` convenience."""
        return cls(
            tuple(
                ClusterEvent(tick, action, node)
                for tick, action, node in events
            )
        )

    def ordered(self) -> List[ClusterEvent]:
        return sorted(
            self.events,
            key=lambda event: (
                event.tick,
                0 if event.action == "leave" else 1,
                event.node,
            ),
        )


def default_shard_cost(payload: Any) -> int:
    """Ticks a shard costs: its payload size (at least 1)."""
    if isinstance(payload, Sized):
        return max(1, len(payload))
    return 1


def _steal_order(index: int) -> Tuple[int, int]:
    """The stable-hash steal priority of a queued shard."""
    return (stable_hash(f"shard:{index}"), index)


class ClusterBackend:
    """Deterministic simulation of an elastic shard-running cluster.

    Counters accumulate across :meth:`map_shards` calls (matching
    :attr:`ShardedExecutor.shards_retried` semantics);
    :attr:`makespan_ticks` and :attr:`completions` describe the most
    recent call.
    """

    name = "cluster"

    def __init__(
        self,
        nodes: int = 2,
        shard_count: Optional[int] = None,
        schedule: Optional[ClusterSchedule] = None,
        work_stealing: bool = True,
        shard_cost: Optional[Callable[[Any], int]] = None,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    ) -> None:
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        self.nodes = nodes
        self.workers = nodes
        if shard_count is None:
            shard_count = nodes * SHARDS_PER_WORKER
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        self.shard_count = shard_count
        self.schedule = schedule or ClusterSchedule()
        self.work_stealing = work_stealing
        self.shard_cost = shard_cost or default_shard_cost
        self.retry_policy = retry_policy
        #: Shards re-executed (suppressed) after a retryable crash.
        self.shards_retried = 0
        #: Shards stolen off a live node's queue by an idle node.
        self.shards_stolen = 0
        #: Shard runs lost with a leaving node and re-dispatched.
        self.shards_speculated = 0
        #: Logical makespan of the last map_shards call.
        self.makespan_ticks = 0
        #: ``(shard_index, node, tick)`` per completion, last call.
        self.completions: List[Tuple[int, int, int]] = []

    def map_shards(
        self,
        task: Callable[[int, Any], Any],
        shards: Sequence[Any],
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> List[Any]:
        """Simulate the cluster run; results in shard-index order."""
        self.makespan_ticks = 0
        self.completions = []
        if initializer is not None:
            initializer(*initargs)
        count = len(shards)
        results: List[Optional[Any]] = [None] * count
        if count == 0:
            return []

        live: Set[int] = set(range(self.nodes))
        next_fresh_node = max(
            [self.nodes]
            + [event.node + 1 for event in self.schedule.events]
        )
        #: Per-node FIFO of assigned-but-not-started shard indexes.
        queues: Dict[int, List[int]] = {node: [] for node in live}
        placement_order = sorted(live)
        for index in range(count):
            node = placement_order[index % len(placement_order)]
            queues[node].append(index)
        #: Shards with no home (lost to leaves/crashes), re-dispatched
        #: to any idle node in stable-hash order.
        orphans: List[int] = []
        #: Shards whose next run is a suppressed crash re-execution.
        suppressed: Set[int] = set()
        #: Retryable failures per shard, bounded by the retry policy.
        attempts: Dict[int, int] = {}
        #: node -> (shard_index, finish_tick).
        running: Dict[int, Tuple[int, int]] = {}
        events = self.schedule.ordered()
        next_event = 0
        tick = 0
        remaining = count

        def apply_due_events(now: int) -> None:
            nonlocal next_event
            while (
                next_event < len(events)
                and events[next_event].tick <= now
            ):
                event = events[next_event]
                next_event += 1
                if event.action == "leave":
                    if event.node not in live:
                        continue
                    live.discard(event.node)
                    orphans.extend(queues.pop(event.node, []))
                    lost = running.pop(event.node, None)
                    if lost is not None:
                        # The in-flight run is gone with the node; the
                        # shard never committed, so its speculative
                        # re-run elsewhere is its (identical) first
                        # execution.
                        self.shards_speculated += 1
                        orphans.append(lost[0])
                elif event.node not in live:
                    live.add(event.node)
                    queues[event.node] = []

        def dispatch(now: int) -> None:
            for node in sorted(live):
                if node in running:
                    continue
                queue = queues.setdefault(node, [])
                shard: Optional[int] = None
                if queue:
                    shard = queue.pop(0)
                else:
                    # Orphan re-dispatch is recovery and always
                    # allowed; raiding another live node's queue is
                    # stealing and opt-in.
                    candidates = list(orphans)
                    if self.work_stealing:
                        for other in sorted(live):
                            if other != node:
                                candidates.extend(queues[other])
                    if candidates:
                        shard = min(candidates, key=_steal_order)
                        if shard in orphans:
                            orphans.remove(shard)
                        else:
                            for other in sorted(live):
                                if shard in queues[other]:
                                    queues[other].remove(shard)
                                    break
                            self.shards_stolen += 1
                if shard is None:
                    continue
                cost = max(1, int(self.shard_cost(shards[shard])))
                if shard in suppressed:
                    # Deterministic backoff: the re-run is priced with
                    # the policy's geometric schedule.
                    cost += self.retry_policy.backoff_ticks(
                        attempts[shard]
                    )
                running[node] = (shard, now + cost)

        while remaining:
            apply_due_events(tick)
            dispatch(tick)
            if not running:
                if next_event < len(events):
                    # Idle until the schedule changes membership.
                    tick = max(tick, events[next_event].tick)
                    continue
                # Every node is gone and no help is scripted: bring up
                # a fresh recovery node, like the pool's parent retry.
                node = next_fresh_node
                next_fresh_node += 1
                live.add(node)
                queues[node] = []
                continue
            finish = min(end for _, end in running.values())
            if (
                next_event < len(events)
                and events[next_event].tick < finish
            ):
                tick = events[next_event].tick
                continue
            tick = finish
            for node in sorted(
                n for n, (_, end) in running.items() if end == tick
            ):
                shard, _ = running.pop(node)
                try:
                    if shard in suppressed:
                        value = rerun_shard(task, shard, shards[shard])
                    else:
                        value = task(shard, shards[shard])
                except Exception as error:
                    if not shard_retryable(error):
                        raise
                    failures = attempts.get(shard, 0) + 1
                    attempts[shard] = failures
                    if failures >= self.retry_policy.attempts:
                        raise
                    # The crash takes its node down; the shard goes
                    # back to the steal queue for a suppressed re-run.
                    self.shards_retried += 1
                    suppressed.add(shard)
                    live.discard(node)
                    orphans.extend(queues.pop(node, []))
                    orphans.append(shard)
                    continue
                results[shard] = value
                remaining -= 1
                self.completions.append((shard, node, tick))
        self.makespan_ticks = tick
        return cast(List[Any], results)


def _make_cluster(
    workers: Optional[int],
    shard_count: Optional[int],
    nodes: Optional[int],
) -> Backend:
    if nodes is None:
        nodes = workers if workers is not None else 2
    if nodes < 1:
        raise BackendError("cluster node count must be >= 1")
    return ClusterBackend(nodes=nodes, shard_count=shard_count)


register_backend("cluster", _make_cluster)
