"""Sharded whole-history detection over a landed segment store.

The serial :meth:`AdoptionStudy.detect_from_store` concatenates every
partition into one whole-history batch. This module is its distributed
form: the store hands each worker a
:class:`~repro.store.slices.ManifestSlice` — the full partition list
plus a domain hash shard — and the worker folds the history partition
by partition from disk, keeping only its shard's rows.

Sharding is by *domain*, not by partition, because
:meth:`SegmentDetector.process_batch` requires the complete daily
history of each domain; hash-partitioning domains keeps that contract
per worker while the per-shard detector results merge exactly
(:meth:`DetectionResult.merge` is an integer sum / disjoint keyed
union). Merging in shard-index order makes the result byte-identical
to the serial concatenation — for any backend, any shard count, and
any cluster join/leave schedule.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.detection import DetectionResult, SegmentDetector
from repro.core.references import SignatureCatalog
from repro.parallel.backend import BackendSpec, resolve_backend
from repro.store.slices import ManifestSlice
from repro.store.store import SegmentStore

#: Per-worker-process detector inputs (set by the pool initializer).
_WORKER_DETECT: Optional[Tuple[SignatureCatalog, int]] = None


def _init_detect_worker(catalog: SignatureCatalog, horizon: int) -> None:
    global _WORKER_DETECT
    _WORKER_DETECT = (catalog, horizon)


def _detect_shard(
    shard_index: int, manifest_slice: ManifestSlice
) -> DetectionResult:
    """Fold one domain shard's whole history from its slice."""
    assert _WORKER_DETECT is not None, "worker initializer did not run"
    catalog, horizon = _WORKER_DETECT
    detector = SegmentDetector(catalog, horizon)
    batch = manifest_slice.load_batch()
    if len(batch):
        detector.process_batch(batch)
    return detector.result()


def detect_from_slices(
    store: SegmentStore,
    sources: Sequence[str],
    catalog: SignatureCatalog,
    horizon: int,
    backend: Optional[BackendSpec] = None,
    workers: Optional[int] = None,
    shard_count: Optional[int] = None,
) -> DetectionResult:
    """Distributed :meth:`AdoptionStudy.detect_from_store`.

    Byte-identical to the serial whole-history concatenation; no
    worker (and no merge step) ever materialises more than one
    partition plus its own domain shard's rows.
    """
    executor = resolve_backend(
        backend, workers=workers, shard_count=shard_count
    )
    slices = store.manifest_slices(
        executor.shard_count, sources=sources, by="domains"
    )
    parts: List[DetectionResult] = executor.map_shards(
        _detect_shard,
        slices,
        initializer=_init_detect_worker,
        initargs=(catalog, horizon),
    )
    return DetectionResult.merge(parts)
