"""Sharded execution of the full-study measurement + detection phase.

The expensive phase of :meth:`repro.core.pipeline.AdoptionStudy.run` —
probe → enrich → detect over every domain — is embarrassingly parallel
per domain. Each worker holds its own :class:`AdoptionStudy` over the
same world (forked, so the world ships once) and runs the *identical*
serial code over its shard's domains; the parent then merges the
per-shard aggregates through the exact merge hooks
(:meth:`DetectionResult.merge`, :meth:`FluxAnalysis.merge`,
:meth:`PeakAnalysis.merge`). Because every merge is an integer sum or a
disjoint keyed union, the merged measurement is byte-identical to a
serial run — for any worker count and any shard count. Growth, being a
nonlinear analysis (median smoothing), is not merged per shard: it runs
in the parent over the merged daily series, which `DetectionResult.merge`
has already aggregated exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.detection import DetectionResult
from repro.core.flux import FluxAnalysis, FluxSeries
from repro.core.peaks import PeakAnalysis, PeakStats
from repro.faults.errors import WorkerCrash
from repro.faults.plan import FaultLog, FaultPlan
from repro.measurement.snapshot import ObservationSegment
from repro.parallel.backend import BackendSpec, resolve_backend
from repro.parallel.sharding import partition_names

if TYPE_CHECKING:  # avoid a circular import at runtime
    from repro.core.pipeline import AdoptionStudy
    from repro.core.references import SignatureCatalog
    from repro.world.world import World


@dataclass
class StudyMeasurement:
    """Everything the sharded measurement phase produces."""

    segments: Dict[str, List[ObservationSegment]]
    detection_gtld: DetectionResult
    detection_nl: DetectionResult
    detection_alexa: DetectionResult
    flux: Dict[str, FluxSeries]
    peaks: Dict[str, PeakStats]
    #: This shard's fault accounting (empty on clean runs).
    fault_log: FaultLog = field(default_factory=FaultLog)
    #: scope → reason quarantined while measuring this shard.
    quarantined: Dict[str, str] = field(default_factory=dict)


#: Per-worker-process study instance (set by the pool initializer).
_WORKER_STUDY: Optional["AdoptionStudy"] = None


def _init_study_worker(
    world: "World",
    catalog: "SignatureCatalog",
    fault_plan: Optional[FaultPlan] = None,
) -> None:
    """Build this worker's study once; shards reuse its caches."""
    global _WORKER_STUDY
    from repro.core.pipeline import AdoptionStudy

    _WORKER_STUDY = AdoptionStudy(world, catalog, fault_plan=fault_plan)


def _study_shard(
    shard_index: int, payload: Tuple[Sequence[str], Sequence[str]]
) -> StudyMeasurement:
    """Measure + detect one shard with the serial code paths."""
    study = _WORKER_STUDY
    assert study is not None, "worker initializer did not run"
    domain_names, alexa_names = payload
    from repro.core.pipeline import GTLDS

    # Per-shard accounting: a worker process handles many shards with
    # one study, so reset the log/quarantine surfaces between shards —
    # otherwise each returned part would snapshot the cumulative log
    # and the parent merge would double-count.
    study.fault_log = FaultLog()
    study.quarantined_scopes = {}
    injector = study._injector
    if injector is not None:
        injector.log = study.fault_log
        event = injector.fire("parallel.executor", key=str(shard_index))
        if event is not None:
            # Models this worker dying mid-shard; the executor
            # re-executes the shard in the parent under suppression.
            raise WorkerCrash(event.site, event.kind, event.key)

    segments = study.collect_segments(domain_names)
    gtld_names = [
        name
        for name in domain_names
        if study.world.domains[name].tld in GTLDS
    ]
    nl_names = [
        name
        for name in domain_names
        if study.world.domains[name].tld == "nl"
    ]
    detection_gtld = study.detect(segments, gtld_names)
    horizon = study.world.horizon
    return StudyMeasurement(
        segments=segments,
        detection_gtld=detection_gtld,
        detection_nl=study.detect(segments, nl_names),
        detection_alexa=study.detect_alexa(segments, alexa_names),
        flux=FluxAnalysis(horizon).analyze(detection_gtld),
        peaks=PeakAnalysis(horizon).analyze(detection_gtld),
        fault_log=study.fault_log,
        quarantined=dict(study.quarantined_scopes),
    )


def run_sharded_measurement(
    study: "AdoptionStudy",
    workers: Optional[int] = None,
    shard_count: Optional[int] = None,
    backend: Optional[BackendSpec] = None,
) -> StudyMeasurement:
    """The parallel equivalent of the serial measurement phase.

    Execution goes through a :class:`repro.parallel.backend.Backend`
    (*backend* spec/instance > ``REPRO_BACKEND`` > the local pool).
    Shards are merged in shard-index order; the result is
    byte-identical to the serial path for any backend and any
    ``(workers, shard_count)``.
    """
    executor = resolve_backend(
        backend, workers=workers, shard_count=shard_count
    )
    retried_before = executor.shards_retried
    domain_shards = partition_names(
        study.world.domains, executor.shard_count
    )
    alexa_shards = partition_names(
        study.world.alexa_names, executor.shard_count
    )
    parts = executor.map_shards(
        _study_shard,
        list(zip(domain_shards, alexa_shards)),
        initializer=_init_study_worker,
        initargs=(study.world, study.catalog, study.fault_plan),
    )

    # Fold worker-side fault accounting and quarantines back into the
    # parent study (shard-index order keeps the merge deterministic).
    for part in parts:
        for scope, reason in sorted(part.quarantined.items()):
            study.quarantine_scope(scope, reason)
        study.fault_log.absorb(part.fault_log)
    for _ in range(executor.shards_retried - retried_before):
        study.fault_log.record_shard_retry()

    merged_segments: Dict[str, List[ObservationSegment]] = {}
    for part in parts:
        merged_segments.update(part.segments)
    horizon = study.world.horizon
    return StudyMeasurement(
        # Re-keyed to world order, matching the serial collection loop.
        segments={
            name: merged_segments[name] for name in study.world.domains
        },
        detection_gtld=DetectionResult.merge(
            [part.detection_gtld for part in parts]
        ),
        detection_nl=DetectionResult.merge(
            [part.detection_nl for part in parts]
        ),
        detection_alexa=DetectionResult.merge(
            [part.detection_alexa for part in parts]
        ),
        flux=FluxAnalysis(horizon).merge([part.flux for part in parts]),
        peaks=PeakAnalysis(horizon).merge(
            [part.peaks for part in parts]
        ),
    )
