"""Deterministic domain sharding.

Shard assignment reuses :func:`repro.world.ipam.stable_hash` (CRC32), so
a name lands in the same shard on every run, on every machine, and in
every process — the property the byte-identity guarantees of
:mod:`repro.parallel` rest on. Within a shard, names keep their input
order, so per-shard processing order is a pure function of the input
order and the shard count.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, TypeVar

from repro.batch.batch import ObservationBatch
from repro.world.ipam import stable_hash

T = TypeVar("T")


def shard_of(name: str, shard_count: int) -> int:
    """The shard index of *name* under *shard_count* shards."""
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    return stable_hash(name) % shard_count


def partition_names(
    names: Iterable[str], shard_count: int
) -> List[List[str]]:
    """Hash-partition *names* into ``shard_count`` ordered shards.

    Every name appears in exactly one shard; each shard preserves the
    relative input order of its members.
    """
    shards: List[List[str]] = [[] for _ in range(shard_count)]
    for name in names:
        shards[shard_of(name, shard_count)].append(name)
    return shards


def chunk_records(records: Sequence[T], chunks: int) -> List[Sequence[T]]:
    """Split *records* into ``chunks`` contiguous, order-preserving runs.

    Contiguity matters: concatenating per-chunk map outputs in chunk
    order reproduces the exact per-key value order a single sequential
    pass over *records* would produce.
    """
    if chunks < 1:
        raise ValueError("chunks must be >= 1")
    size, extra = divmod(len(records), chunks)
    out: List[Sequence[T]] = []
    start = 0
    for index in range(chunks):
        end = start + size + (1 if index < extra else 0)
        out.append(records[start:end])
        start = end
    return out


def chunk_batches(
    batch: ObservationBatch, chunks: int
) -> List[ObservationBatch]:
    """:func:`chunk_records` for a columnar batch.

    Same contiguous divmod-balanced split, so chunk *i* holds exactly
    the rows ``chunk_records(batch.rows(), chunks)[i]`` would — but each
    chunk stays columnar and is compacted (re-interned into fresh pools
    holding only its own strings), so shipping a chunk across a fork
    boundary pickles one small column set instead of thousands of boxed
    rows.
    """
    if chunks < 1:
        raise ValueError("chunks must be >= 1")
    size, extra = divmod(len(batch), chunks)
    out: List[ObservationBatch] = []
    start = 0
    for index in range(chunks):
        end = start + size + (1 if index < extra else 0)
        out.append(batch.slice(start, end).compact())
        start = end
    return out
