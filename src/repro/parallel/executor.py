"""The sharded process-pool executor behind every parallel path.

:class:`ShardedExecutor` fans an indexed task out over shards and
collects results **in shard-index order** — never completion order —
which is what keeps merged outputs byte-identical across worker counts
(``repro analyze`` enforces this with the ``unordered-futures`` rule).

Worker count resolution: explicit argument > the ``REPRO_WORKERS``
environment variable > ``os.cpu_count()``. At ``workers=1`` the executor
degrades to a plain in-process loop — no multiprocessing machinery at
all — so the serial fallback is always available and trivially
deterministic.

Heavy shared state (the world, a job description) travels through the
pool *initializer*: under the default ``fork`` start method it is
inherited by workers without pickling, so closures (e.g. the mappers in
:mod:`repro.mapreduce.jobs`) work and the world is shipped once, not
once per shard.

Worker-death containment: a shard whose worker dies (a broken pool, or
an exception marked ``shard_retryable`` such as
:class:`~repro.faults.errors.WorkerCrash`) is re-executed **in the
parent process, in shard-index order, under fault suppression** — the
same fault plan cannot re-kill the retried shard, and the merged output
stays byte-identical because retried results land back at their shard
index. :attr:`ShardedExecutor.shards_retried` counts the re-executions.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Any,
    Callable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    cast,
)

from repro.faults.runtime import rerun_shard, shard_retryable

S = TypeVar("S")  # shard payload
R = TypeVar("R")  # shard result

#: Environment variable that sets the default worker count.
REPRO_WORKERS_ENV = "REPRO_WORKERS"

#: Default shards per worker — enough slack that uneven shards keep all
#: workers busy, few enough that per-shard overhead stays negligible.
SHARDS_PER_WORKER = 4


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count (argument > env > cpu count).

    An explicit argument is validated strictly — passing ``workers=0``
    is a caller bug. A malformed or non-positive ``REPRO_WORKERS``
    value, however, is clamped to 1 with a warning: the variable is
    read deep inside pool construction (possibly in a fork
    initializer), where raising would kill the run over an environment
    typo instead of degrading it to the serial path.
    """
    if workers is None:
        env = os.environ.get(REPRO_WORKERS_ENV)
        if env is not None and env.strip():
            try:
                workers = int(env)
            except ValueError:
                warnings.warn(
                    f"{REPRO_WORKERS_ENV}={env!r} is not an integer; "
                    f"running with 1 worker",
                    RuntimeWarning,
                    stacklevel=2,
                )
                workers = 1
            if workers < 1:
                warnings.warn(
                    f"{REPRO_WORKERS_ENV}={env!r} is not >= 1; "
                    f"running with 1 worker",
                    RuntimeWarning,
                    stacklevel=2,
                )
                workers = 1
        else:
            workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform.

    The pool's zero-copy initargs contract (and closure-built jobs)
    needs ``fork``; spawn-only platforms fall back to the serial
    backend instead (see :mod:`repro.parallel.backend`).
    """
    return "fork" in multiprocessing.get_all_start_methods()


def _mp_context() -> multiprocessing.context.BaseContext:
    """The ``fork`` context where available (zero-copy initargs)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platform without fork
        return multiprocessing.get_context()


def _shard_retryable(error: BaseException) -> bool:
    """Whether a failed shard should be re-executed in the parent."""
    return shard_retryable(error)


def run_shards_serially(
    task: Callable[[int, S], R],
    shards: Sequence[S],
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
) -> Tuple[List[R], int]:
    """The in-process shard loop every backend's serial path shares.

    Returns ``(results, retried)`` where *retried* counts shards whose
    first execution raised a retryable error and were re-executed via
    :func:`repro.faults.runtime.rerun_shard` (injection suppressed).
    """
    if initializer is not None:
        initializer(*initargs)
    results: List[R] = []
    retried = 0
    for index, shard in enumerate(shards):
        try:
            results.append(task(index, shard))
        except Exception as error:
            if not shard_retryable(error):
                raise
            retried += 1
            results.append(rerun_shard(task, index, shard))
    return results, retried


class ShardedExecutor:
    """Runs an indexed task over shards with deterministic collection."""

    def __init__(
        self,
        workers: Optional[int] = None,
        shard_count: Optional[int] = None,
    ):
        self.workers = resolve_workers(workers)
        if shard_count is None:
            shard_count = self.workers * SHARDS_PER_WORKER
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        self.shard_count = shard_count
        #: Shards re-executed in the parent after a worker death.
        self.shards_retried = 0

    def map_shards(
        self,
        task: Callable[[int, S], R],
        shards: Sequence[S],
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> List[R]:
        """``[task(0, shards[0]), task(1, shards[1]), ...]``.

        Results are returned in shard-index order regardless of which
        worker finishes first. With ``workers == 1`` everything runs in
        this process and no multiprocessing path is taken. A shard lost
        to a worker death is re-executed here in the parent (see module
        docstring); any other shard exception propagates unchanged.
        """
        if self.workers == 1 or len(shards) <= 1:
            results, retried = run_shards_serially(
                task, shards, initializer=initializer, initargs=initargs
            )
            self.shards_retried += retried
            return results
        pool_size = min(self.workers, len(shards))
        collected: List[Optional[R]] = []
        failed: List[int] = []
        with ProcessPoolExecutor(
            max_workers=pool_size,
            mp_context=_mp_context(),
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            futures = [
                pool.submit(task, index, shard)
                for index, shard in enumerate(shards)
            ]
            # Consume in shard-index order — the determinism contract.
            for index, future in enumerate(futures):
                try:
                    collected.append(future.result())
                except BrokenProcessPool:
                    # The worker process died outright; every pending
                    # future on this pool fails the same way, and all of
                    # them are re-executed below.
                    collected.append(None)
                    failed.append(index)
                except Exception as error:
                    if not _shard_retryable(error):
                        raise
                    collected.append(None)
                    failed.append(index)
        if failed:
            # Re-execute lost shards here: initialise the parent like a
            # worker, then run each shard with fault injection
            # suppressed so the same plan cannot re-kill the retry.
            if initializer is not None:
                initializer(*initargs)
            for index in failed:
                self.shards_retried += 1
                collected[index] = rerun_shard(task, index, shards[index])
        return cast(List[R], collected)
