"""Pluggable execution backends behind every sharded pass.

Every sharded pass in the repo — the study measurement phase, the
MapReduce engine, the sketch rebuild, and whole-history detection from
a landed store — fans shards out through one :class:`Backend` protocol
instead of constructing a pool concretely. Three implementations ship:

* :class:`SerialBackend` — the in-process loop, now an explicit
  backend rather than an implicit ``workers=1`` special case;
* :class:`LocalPoolBackend` — the fork process pool
  (:class:`~repro.parallel.executor.ShardedExecutor`), bit-for-bit
  compatible with the previous direct construction; on spawn-only
  platforms (no ``fork`` start method) it degrades to the serial path
  with a warning instead of shipping unpicklable initargs;
* :class:`~repro.parallel.cluster.ClusterBackend` — a simulated
  elastic multi-node cluster with deterministic placement, work
  stealing, and speculative re-execution.

All three share the determinism contract: results are collected in
shard-index order and crashed shards are re-executed through
:func:`repro.faults.runtime.rerun_shard`, so the merged output of any
backend is byte-identical to a serial run.

Selection goes through a registry: an explicit argument (a backend
instance or a ``"name[:nodes]"`` spec) beats the ``REPRO_BACKEND``
environment variable, which beats the default (``local``). The CLI's
``--backend`` flag and every ``backend=`` parameter accept the same
specs. See ``docs/PERFORMANCE.md`` § Execution backends.
"""

from __future__ import annotations

import os
import warnings
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

from repro.parallel.executor import (
    SHARDS_PER_WORKER,
    ShardedExecutor,
    fork_available,
    resolve_workers,
    run_shards_serially,
)

#: Environment variable that selects the default backend spec.
REPRO_BACKEND_ENV = "REPRO_BACKEND"

#: The registry entry used when neither argument nor env chooses one.
DEFAULT_BACKEND = "local"


class BackendError(ValueError):
    """An unknown backend name or a malformed backend spec."""


class Backend(Protocol):
    """What a sharded pass requires of its execution substrate."""

    #: Parallelism the backend models (processes, simulated nodes, ...).
    workers: int
    #: Default shard count consumers split their work into.
    shard_count: int

    @property
    def shards_retried(self) -> int:
        """Shards re-executed after a retryable worker death."""
        ...

    def map_shards(
        self,
        task: Callable[[int, Any], Any],
        shards: Sequence[Any],
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> List[Any]:
        """``[task(0, shards[0]), task(1, shards[1]), ...]`` in order."""
        ...


#: What ``backend=`` parameters accept: an instance, a ``"name[:N]"``
#: spec, or None (env var, then the default).
BackendSpec = Union[str, Backend]


class SerialBackend:
    """Explicit in-process execution — the determinism baseline.

    Runs every shard in this process through the same loop (and the
    same crashed-shard recovery) the pool's ``workers=1`` path uses;
    every other backend is proven against its output.
    """

    name = "serial"

    def __init__(self, shard_count: Optional[int] = None) -> None:
        self.workers = 1
        if shard_count is None:
            shard_count = SHARDS_PER_WORKER
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        self.shard_count = shard_count
        self.shards_retried = 0

    def map_shards(
        self,
        task: Callable[[int, Any], Any],
        shards: Sequence[Any],
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> List[Any]:
        results, retried = run_shards_serially(
            task, shards, initializer=initializer, initargs=initargs
        )
        self.shards_retried += retried
        return results


class LocalPoolBackend:
    """The fork process pool, wrapped as a backend.

    Bit-for-bit compatible with constructing
    :class:`~repro.parallel.executor.ShardedExecutor` directly. On
    platforms without the ``fork`` start method the pool's zero-copy
    initargs contract cannot hold (closures and worlds would have to
    pickle), so the backend warns and clamps to one worker — the
    executor then takes its in-process serial path.
    """

    name = "local"

    def __init__(
        self,
        workers: Optional[int] = None,
        shard_count: Optional[int] = None,
    ) -> None:
        workers = resolve_workers(workers)
        if workers > 1 and not fork_available():
            warnings.warn(
                "multiprocessing start method 'fork' is unavailable on "
                "this platform; the local pool backend is falling back "
                "to in-process serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            workers = 1
        self._executor = ShardedExecutor(
            workers=workers, shard_count=shard_count
        )
        self.workers = self._executor.workers
        self.shard_count = self._executor.shard_count

    @property
    def shards_retried(self) -> int:
        return self._executor.shards_retried

    def map_shards(
        self,
        task: Callable[[int, Any], Any],
        shards: Sequence[Any],
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> List[Any]:
        return self._executor.map_shards(
            task, shards, initializer=initializer, initargs=initargs
        )


#: A registry factory: ``(workers, shard_count, nodes) -> Backend``.
BackendFactory = Callable[
    [Optional[int], Optional[int], Optional[int]], Backend
]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register (or replace) a backend factory under *name*."""
    _REGISTRY[name] = factory


def backend_names() -> List[str]:
    """Every registered backend name, sorted."""
    _ensure_registered()
    return sorted(_REGISTRY)


def _ensure_registered() -> None:
    # The cluster backend lives in its own module so that importing
    # this one stays light; pull it in before any registry lookup.
    import repro.parallel.cluster  # noqa: F401


def resolve_backend(
    spec: Optional[BackendSpec] = None,
    workers: Optional[int] = None,
    shard_count: Optional[int] = None,
) -> Backend:
    """The backend for a sharded pass.

    Precedence: an explicit *spec* (instance or ``"name[:nodes]"``
    string) > the ``REPRO_BACKEND`` environment variable > the default
    (``local``). *workers*/*shard_count* parameterize the factory;
    they are ignored when *spec* is already a backend instance.
    """
    if spec is not None and not isinstance(spec, str):
        return spec
    if spec is None:
        spec = os.environ.get(REPRO_BACKEND_ENV) or DEFAULT_BACKEND
    name, _, argument = spec.partition(":")
    name = name.strip()
    _ensure_registered()
    factory = _REGISTRY.get(name)
    if factory is None:
        known = ", ".join(backend_names())
        raise BackendError(
            f"unknown backend {name!r} (choose from: {known}; "
            f"'cluster:N' runs N simulated nodes)"
        )
    nodes: Optional[int] = None
    if argument:
        try:
            nodes = int(argument)
        except ValueError:
            raise BackendError(
                f"backend spec {spec!r}: {argument!r} is not an integer "
                f"node count"
            ) from None
        if nodes < 1:
            raise BackendError(
                f"backend spec {spec!r}: node count must be >= 1"
            )
    return factory(workers, shard_count, nodes)


def _make_serial(
    workers: Optional[int],
    shard_count: Optional[int],
    nodes: Optional[int],
) -> Backend:
    if nodes is not None:
        raise BackendError("the serial backend takes no ':N' argument")
    return SerialBackend(shard_count=shard_count)


def _make_local(
    workers: Optional[int],
    shard_count: Optional[int],
    nodes: Optional[int],
) -> Backend:
    if nodes is not None:
        raise BackendError(
            "the local backend takes no ':N' argument; set workers "
            "(--workers / REPRO_WORKERS) instead"
        )
    return LocalPoolBackend(workers=workers, shard_count=shard_count)


register_backend("serial", _make_serial)
register_backend("local", _make_local)
