"""Deterministic sharded execution for the study and the MapReduce engine.

Three pieces, one contract — parallel results are **byte-identical** to
serial ones, for any worker count and any shard count:

* :mod:`repro.parallel.sharding` — stable hash partitioning of names and
  contiguous chunking of record streams;
* :mod:`repro.parallel.executor` — :class:`ShardedExecutor`, a process
  pool that collects shard results in shard-index order (worker count
  from ``REPRO_WORKERS``, serial in-process fallback at one worker);
* :mod:`repro.parallel.study` / :mod:`repro.parallel.mapreduce` — the
  sharded measurement phase behind ``AdoptionStudy.run(parallel=True)``
  and the map+combine backend for :class:`MapReduceEngine`.

See ``docs/PERFORMANCE.md`` for the architecture and tuning knobs.
"""

from repro.parallel.executor import (
    REPRO_WORKERS_ENV,
    SHARDS_PER_WORKER,
    ShardedExecutor,
    resolve_workers,
)
from repro.parallel.mapreduce import ParallelBackend
from repro.parallel.sharding import chunk_records, partition_names, shard_of
from repro.parallel.study import StudyMeasurement, run_sharded_measurement

__all__ = [
    "REPRO_WORKERS_ENV",
    "SHARDS_PER_WORKER",
    "ParallelBackend",
    "ShardedExecutor",
    "StudyMeasurement",
    "chunk_records",
    "partition_names",
    "resolve_workers",
    "run_sharded_measurement",
    "shard_of",
]
