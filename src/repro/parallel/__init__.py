"""Deterministic sharded execution for the study and the MapReduce engine.

One contract across every piece — parallel results are **byte-identical**
to serial ones, for any backend, any worker count, and any shard count:

* :mod:`repro.parallel.sharding` — stable hash partitioning of names and
  contiguous chunking of record streams;
* :mod:`repro.parallel.backend` — the :class:`Backend` protocol every
  sharded pass runs through, its registry (``--backend`` /
  ``REPRO_BACKEND``), and the :class:`SerialBackend` /
  :class:`LocalPoolBackend` implementations;
* :mod:`repro.parallel.executor` — :class:`ShardedExecutor`, the fork
  process pool behind :class:`LocalPoolBackend` (worker count from
  ``REPRO_WORKERS``, serial in-process fallback at one worker), which
  collects shard results in shard-index order;
* :mod:`repro.parallel.cluster` — :class:`ClusterBackend`, a simulated
  elastic multi-node cluster with deterministic placement, work
  stealing, and speculative re-execution on logical ticks;
* :mod:`repro.parallel.study` / :mod:`repro.parallel.mapreduce` /
  :mod:`repro.parallel.detect` — the sharded measurement phase behind
  ``AdoptionStudy.run(parallel=True)``, the map+combine backend for
  :class:`MapReduceEngine`, and whole-history detection from segment
  store manifest slices.

See ``docs/PERFORMANCE.md`` for the architecture and tuning knobs.
"""

from repro.parallel.backend import (
    REPRO_BACKEND_ENV,
    Backend,
    BackendError,
    BackendSpec,
    LocalPoolBackend,
    SerialBackend,
    backend_names,
    register_backend,
    resolve_backend,
)
from repro.parallel.cluster import (
    ClusterBackend,
    ClusterEvent,
    ClusterSchedule,
)
from repro.parallel.detect import detect_from_slices
from repro.parallel.executor import (
    REPRO_WORKERS_ENV,
    SHARDS_PER_WORKER,
    ShardedExecutor,
    fork_available,
    resolve_workers,
)
from repro.parallel.mapreduce import ParallelBackend
from repro.parallel.sharding import chunk_records, partition_names, shard_of
from repro.parallel.study import StudyMeasurement, run_sharded_measurement

__all__ = [
    "Backend",
    "BackendError",
    "BackendSpec",
    "ClusterBackend",
    "ClusterEvent",
    "ClusterSchedule",
    "LocalPoolBackend",
    "ParallelBackend",
    "REPRO_BACKEND_ENV",
    "REPRO_WORKERS_ENV",
    "SHARDS_PER_WORKER",
    "SerialBackend",
    "ShardedExecutor",
    "StudyMeasurement",
    "backend_names",
    "chunk_records",
    "detect_from_slices",
    "fork_available",
    "partition_names",
    "register_backend",
    "resolve_backend",
    "resolve_workers",
    "run_sharded_measurement",
    "shard_of",
]
