"""Multiprocess map+combine backend for :class:`MapReduceEngine`.

:class:`ParallelBackend` plugs into the engine's ``backend`` slot: it
splits the record stream into contiguous chunks (one per shard), runs
:func:`repro.mapreduce.engine.map_combine` for each chunk in a worker
process, and hands the per-chunk shuffles back **in chunk order** for
the engine's merge + reduce.

The job description travels through the pool initializer, which the
default ``fork`` start method inherits without pickling — so jobs built
from closures (every job in :mod:`repro.mapreduce.jobs`) work unchanged.
Only the record chunks and the (combined, hence small) shuffle results
cross the process boundary as pickles.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.batch.batch import ObservationBatch
from repro.mapreduce.engine import Job, JobCounters, Shuffle, map_combine
from repro.parallel.backend import BackendSpec, resolve_backend
from repro.parallel.sharding import chunk_batches, chunk_records

#: Per-worker-process job state (set by the pool initializer).
_WORKER_JOB: Optional[Job] = None
_WORKER_PARTITIONS: int = 0


def _init_map_worker(job: Job, partitions: int) -> None:
    global _WORKER_JOB, _WORKER_PARTITIONS
    _WORKER_JOB = job
    _WORKER_PARTITIONS = partitions


def _map_chunk(
    shard_index: int, chunk: Iterable[object]
) -> Tuple[Shuffle, JobCounters]:
    job = _WORKER_JOB
    assert job is not None, "worker initializer did not run"
    return map_combine(job, chunk, _WORKER_PARTITIONS)


class ParallelBackend:
    """Runs the map+combine phase of a job over an execution backend.

    For a fixed ``shard_count`` the chunking — and therefore every
    per-chunk shuffle, their merged concatenation, and the aggregated
    counters — is independent of ``workers`` and of which backend
    (pool, serial, simulated cluster) runs the chunks.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        shard_count: Optional[int] = None,
        backend: Optional[BackendSpec] = None,
    ):
        self._executor = resolve_backend(
            backend, workers=workers, shard_count=shard_count
        )
        self.workers = self._executor.workers
        self.shard_count = self._executor.shard_count

    def map_shards(
        self, job: Job, records: Iterable[object], partitions: int
    ) -> List[Tuple[Shuffle, JobCounters]]:
        """One ``map_combine`` result per contiguous chunk, in order.

        A columnar :class:`ObservationBatch` is chunked as compacted
        sub-batches — never boxed into a row list — so what crosses the
        fork boundary is each chunk's interned columns; workers iterate
        the rows lazily inside ``map_combine``.
        """
        chunks: List[Iterable[object]]
        if isinstance(records, ObservationBatch):
            chunks = list(chunk_batches(records, self.shard_count))
        else:
            chunks = list(chunk_records(list(records), self.shard_count))
        return self._executor.map_shards(
            _map_chunk,
            chunks,
            initializer=_init_map_worker,
            initargs=(job, partitions),
        )
