"""The snapshot index plane: immutable read-optimized adoption indexes.

A :class:`ServeIndex` is everything the query service needs to answer a
request, precomputed from a :class:`~repro.stream.engine.StreamEngine`
into plain read-only structures: per-domain protection state (current
providers, always-on/on-demand usage labels, compact interval history),
per-provider daily adoption series, and per-scope counters as of the
latest fully ingested day.

The :class:`SnapshotSwapper` owns the current index. Attached to an
engine it rebuilds after every *completed* day (a gTLD day is complete
only once com, net **and** org applied it) and publishes the new index
with a single reference assignment — readers on other threads always see
either the whole previous day or the whole next day, never a torn one,
and never take a lock that could block ingest.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.classification import UsageClassifier
from repro.core.detection import UseInterval
from repro.sketch.plane import ScopeSketches
from repro.stream.engine import StreamEngine
from repro.stream.query import LiveSnapshot


class ServeError(ValueError):
    """A serve-index read that cannot be answered (unknown scope/...)."""


def build_scope_index(
    engine: StreamEngine,
    scope_name: str,
    classifier: Optional[UsageClassifier] = None,
) -> "ScopeIndex":
    """One scope's :class:`ScopeIndex` copied out of live engine state.

    Called at the scope's own day boundary — right after the partition
    that completed the day applied, before any later partition — the
    copy is an exact prefix of the feed through that day. (After a
    quarantine-hole reconciliation the engine may already hold
    observations past the completed day; the index day is then a floor,
    still swap-atomic but not a pure prefix.)
    """
    if classifier is None:
        classifier = UsageClassifier(engine.horizon)
    state = engine.scope(scope_name)
    day = engine.latest_day(scope_name)
    if day is not None and day < 0:
        day = None
    intervals = state.intervals()
    usage = {
        key: classifier.classify_intervals(
            runs, 0, engine.horizon
        ).value
        for key, runs in sorted(intervals.items())
        if runs
    }
    detection = state.result()
    plane = engine.sketches
    return ScopeIndex(
        scope=scope_name,
        day=day,
        domains_seen=state.domains_seen,
        any_series=state.any_series(),
        provider_series={
            provider: list(detection.providers[provider].total)
            for provider in state.provider_names
        },
        intervals=intervals,
        usage=usage,
        # A frozen copy of the scope's sketch set (the churn HLLs stay
        # on the live plane — serve answers point/top-K estimates).
        sketches=(
            plane.scope(scope_name).copy(include_day_domains=False)
            if plane is not None
            else None
        ),
    )


class ScopeIndex:
    """One scope's read-optimized aggregates, frozen at a day."""

    def __init__(
        self,
        scope: str,
        day: Optional[int],
        domains_seen: int,
        any_series: List[int],
        provider_series: Dict[str, List[int]],
        intervals: Dict[Tuple[str, str], List[UseInterval]],
        usage: Dict[Tuple[str, str], str],
        sketches: Optional[ScopeSketches] = None,
    ):
        self.scope = scope
        #: Latest fully ingested day (None before the first one).
        self.day = day
        self.domains_seen = domains_seen
        self.any_series = any_series
        self.provider_series = provider_series
        #: (domain, provider) → maximal use intervals, day-sorted.
        self.intervals = intervals
        #: (domain, provider) → UsageClass value (always-on/on-demand/…).
        self.usage = usage
        #: The scope's frozen sketch set (None without a sketch plane).
        self.sketches = sketches
        #: domain → sorted providers with any recorded use.
        self.domain_providers: Dict[str, List[str]] = {}
        for domain, provider in sorted(intervals):
            self.domain_providers.setdefault(domain, []).append(provider)

    @property
    def provider_names(self) -> List[str]:
        return sorted(self.provider_series)

    def adoption(self, provider: str, day: int) -> int:
        series = self.provider_series.get(provider)
        return series[day] if series else 0

    def any_adoption(self, day: int) -> int:
        return self.any_series[day] if self.any_series else 0


def _current_providers(
    scope_index: ScopeIndex, domain: str, day: Optional[int]
) -> List[str]:
    """Providers with an interval covering *day*, sorted by name."""
    if day is None:
        return []
    current = []
    for provider in scope_index.domain_providers.get(domain, []):
        for interval in scope_index.intervals[(domain, provider)]:
            if interval.start <= day < interval.end:
                current.append(provider)
                break
    return current


class ServeIndex:
    """An immutable point-in-time query index over every scope.

    Instances are built once (see :meth:`build`) and then only read —
    which is what makes handing the same object to any number of
    concurrent readers safe without locks.
    """

    def __init__(
        self, version: int, horizon: int, scopes: Dict[str, ScopeIndex]
    ):
        self.version = version
        self.horizon = horizon
        self._scopes = scopes

    @classmethod
    def build(cls, engine: StreamEngine, version: int = 0) -> "ServeIndex":
        """Materialise the read-optimized index from live engine state.

        Runs on the ingest side (between partitions), so it may read
        mutable engine state freely; everything it keeps is a copy.
        """
        classifier = UsageClassifier(engine.horizon)
        scopes = {
            scope_name: build_scope_index(engine, scope_name, classifier)
            for scope_name in sorted(engine.scope_names)
        }
        return cls(
            version=version, horizon=engine.horizon, scopes=scopes
        )

    def replace_scopes(
        self, version: int, scopes: Mapping[str, ScopeIndex]
    ) -> "ServeIndex":
        """A new index reusing this one's scopes except *scopes*."""
        merged = dict(self._scopes)
        merged.update(scopes)
        return ServeIndex(
            version=version, horizon=self.horizon, scopes=merged
        )

    # -- reads ---------------------------------------------------------------

    @property
    def scope_names(self) -> List[str]:
        return sorted(self._scopes)

    def scope(self, name: str) -> ScopeIndex:
        scope = self._scopes.get(name)
        if scope is None:
            raise ServeError(f"unknown scope {name!r}")
        return scope

    def lookup(self, domain: str, scope: str = "gtld") -> Dict[str, object]:
        """Point lookup: the domain's current protection in *scope*."""
        scope_index = self.scope(scope)
        day = scope_index.day
        providers = _current_providers(scope_index, domain, day)
        all_providers = scope_index.domain_providers.get(domain, [])
        return {
            "domain": domain,
            "scope": scope,
            "day": day,
            "protected": bool(providers),
            "providers": providers,
            "usage": {
                provider: scope_index.usage[(domain, provider)]
                for provider in all_providers
            },
        }

    def history(
        self, domain: str
    ) -> Dict[str, Dict[str, List[UseInterval]]]:
        """scope → provider → use intervals (the QueryAPI shape)."""
        history: Dict[str, Dict[str, List[UseInterval]]] = {}
        for scope_name in sorted(self._scopes):
            scope_index = self._scopes[scope_name]
            by_provider = {
                provider: list(
                    scope_index.intervals[(domain, provider)]
                )
                for provider in scope_index.domain_providers.get(
                    domain, []
                )
            }
            if by_provider:
                history[scope_name] = by_provider
        return history

    def history_payload(self, domain: str) -> Dict[str, object]:
        """The protocol form of :meth:`history` (intervals as pairs)."""
        return {
            "domain": domain,
            "scopes": {
                scope_name: {
                    provider: [
                        [interval.start, interval.end]
                        for interval in intervals
                    ]
                    for provider, intervals in sorted(
                        by_provider.items()
                    )
                }
                for scope_name, by_provider in sorted(
                    self.history(domain).items()
                )
            },
        }

    def adoption(
        self,
        provider: str,
        day: Optional[int] = None,
        scope: str = "gtld",
    ) -> int:
        """Distinct SLDs using *provider* on *day* (default: latest)."""
        scope_index = self.scope(scope)
        if day is None:
            day = scope_index.day
            if day is None:
                return 0
        if not 0 <= day < self.horizon:
            raise ServeError(f"day {day} outside horizon {self.horizon}")
        return scope_index.adoption(provider, day)

    def aggregate(
        self, scope: str = "gtld", day: Optional[int] = None
    ) -> Dict[str, object]:
        """Provider-level adoption counters for *scope* at *day*."""
        scope_index = self.scope(scope)
        if day is None:
            day = scope_index.day
        if day is None:
            providers = {
                provider: 0 for provider in scope_index.provider_names
            }
            any_use = 0
        else:
            if not 0 <= day < self.horizon:
                raise ServeError(
                    f"day {day} outside horizon {self.horizon}"
                )
            if scope_index.day is None or day > scope_index.day:
                raise ServeError(
                    f"day {day} not ingested yet for scope {scope!r}"
                )
            providers = {
                provider: scope_index.adoption(provider, day)
                for provider in scope_index.provider_names
            }
            any_use = scope_index.any_adoption(day)
        return {
            "scope": scope,
            "day": day,
            "any_use": any_use,
            "providers": providers,
            "domains_seen": scope_index.domains_seen,
        }

    def sketch_guarantee(self, scope: str = "gtld") -> float:
        """The absolute error bound on sketch provider counters.

        The count-min ``εN`` bound of the ``provider␟day`` stream —
        what the ``auto`` aggregate path compares against a requested
        ``max_error`` before deciding sketch vs exact.
        """
        scope_index = self.scope(scope)
        if scope_index.sketches is None:
            raise ServeError(
                f"scope {scope!r} has no sketch plane; "
                f"serve the engine with sketches enabled"
            )
        return scope_index.sketches.adoption_error_bound()

    def aggregate_sketch(
        self,
        scope: str = "gtld",
        day: Optional[int] = None,
        k: int = 10,
    ) -> Dict[str, object]:
        """The sketch-plane :meth:`aggregate`: O(1) in history length.

        Answers from the frozen :class:`ScopeSketches` alone — point
        count-min reads, top-K summaries, and HyperLogLog cardinality —
        touching neither the interval maps nor segment history. Every
        counter is an estimate: provider counts never under-count and
        over-count by at most ``error_bound`` (at the sketch's
        confidence), distinct counts carry the HLL relative error.
        """
        scope_index = self.scope(scope)
        sketches = scope_index.sketches
        if sketches is None:
            raise ServeError(
                f"scope {scope!r} has no sketch plane; "
                f"serve the engine with sketches enabled"
            )
        if day is None:
            day = scope_index.day
        if day is not None and not 0 <= day < self.horizon:
            raise ServeError(f"day {day} outside horizon {self.horizon}")
        providers = {
            provider: (
                sketches.adoption_estimate(provider, day)
                if day is not None
                else 0
            )
            for provider in sketches.provider_names()
        }
        return {
            "scope": scope,
            "day": day,
            "source": "sketch",
            "providers": providers,
            "provider_distinct": {
                provider: int(round(sketches.provider_distinct(provider)))
                for provider in sketches.provider_names()
            },
            "domains_seen_estimate": int(
                round(sketches.distinct_domains())
            ),
            "top_providers": [
                [key, count, error]
                for key, count, error in sketches.top_providers(k)
            ],
            "top_third_parties": [
                [key, count, error]
                for key, count, error in sketches.top_third_parties(k)
            ],
            "error_bound": round(sketches.adoption_error_bound(), 3),
            "distinct_relative_error": round(
                sketches.domains.relative_error, 6
            ),
            "rows_observed": sketches.rows_observed,
        }

    def live_snapshot(self, scope: str = "gtld") -> LiveSnapshot:
        """The scope's counters as a :class:`LiveSnapshot`.

        Identical to ``QueryAPI.snapshot`` against the engine this index
        was built from — this shared constructor is what keeps the
        served and in-process paths from drifting.
        """
        scope_index = self.scope(scope)
        day = scope_index.day
        if day is None:
            return LiveSnapshot(
                scope=scope,
                day=None,
                domains_seen=scope_index.domains_seen,
                any_use=0,
                providers={
                    provider: 0
                    for provider in scope_index.provider_names
                },
            )
        return LiveSnapshot(
            scope=scope,
            day=day,
            domains_seen=scope_index.domains_seen,
            any_use=scope_index.any_adoption(day),
            providers={
                provider: scope_index.adoption(provider, day)
                for provider in scope_index.provider_names
            },
        )

    def snapshot_payload(self) -> Dict[str, object]:
        """Protocol form of the whole-index snapshot/health summary."""
        return {
            "version": self.version,
            "horizon": self.horizon,
            "scopes": {
                name: self.live_snapshot(name).to_dict()
                for name in sorted(self._scopes)
            },
        }


class SnapshotSwapper:
    """Owns the current :class:`ServeIndex`; rebuilds on day boundaries.

    ``attach()`` registers an engine apply-listener. After every applied
    partition the swapper checks whether any scope's latest complete day
    advanced; only then does it rebuild **those scopes** (one rebuild
    per completed day, not per partition) and atomically publish a new
    index that reuses the untouched scopes' existing :class:`ScopeIndex`
    objects. Rebuilding only at a scope's own boundary is what keeps a
    scope's published counters an exact feed prefix: scope B's index is
    never re-copied mid-way through scope A's next day. Readers call
    :meth:`current_index` — a bare attribute read of an immutable
    object, so queries never block ingest and never see a torn day.
    """

    def __init__(self, engine: StreamEngine):
        self._engine = engine
        self._rebuild_lock = threading.Lock()
        self._last_days: Dict[str, Optional[int]] = {}
        self._index = ServeIndex.build(engine, version=0)
        self._record_days(self._index)
        self.rebuilds = 0

    def _record_days(self, index: ServeIndex) -> None:
        self._last_days = {
            name: index.scope(name).day for name in index.scope_names
        }

    @property
    def engine(self) -> StreamEngine:
        return self._engine

    def current_index(self) -> ServeIndex:
        """The current immutable index (lock-free reader side)."""
        return self._index

    def attach(self) -> None:
        """Subscribe to the engine's apply events."""
        self._engine.add_apply_listener(self._on_applied)

    def _on_applied(self, source: str, day: int) -> None:
        self.rebuild_if_advanced()

    def _advanced_scopes(self) -> List[str]:
        advanced = []
        for name in sorted(self._engine.scope_names):
            latest = self._engine.latest_day(name)
            if latest is not None and latest < 0:
                latest = None
            if latest != self._last_days.get(name):
                advanced.append(name)
        return advanced

    def rebuild_if_advanced(self) -> bool:
        """Rebuild iff some scope completed a new day; True if swapped."""
        advanced = self._advanced_scopes()
        if not advanced:
            return False
        self.rebuild(advanced)
        return True

    def rebuild(
        self, scopes: Optional[Sequence[str]] = None
    ) -> ServeIndex:
        """Rebuild *scopes* (default: all) and atomically publish.

        Scopes not rebuilt keep their existing immutable
        :class:`ScopeIndex` — still frozen at their own day boundary.
        """
        with self._rebuild_lock:
            engine = self._engine
            classifier = UsageClassifier(engine.horizon)
            names = (
                sorted(engine.scope_names)
                if scopes is None
                else sorted(scopes)
            )
            rebuilt = {
                name: build_scope_index(engine, name, classifier)
                for name in names
            }
            index = self._index.replace_scopes(
                self._index.version + 1, rebuilt
            )
            self._record_days(index)
            self.rebuilds += 1
            # The swap: one reference assignment. Readers holding the
            # old index keep a consistent (merely stale) view.
            self._index = index
            return index
