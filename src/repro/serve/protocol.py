"""The versioned wire protocol of the adoption query service.

Newline-delimited JSON, one request per line, canonical encoding on the
way out (sorted keys, compact separators, UTF-8): two servers in the
same logical state answer the same request with byte-identical frames.
That canonical form is the contract the equivalence suite tests against
the batch pipeline, so it is centralised here and shared with everything
else that emits snapshot JSON (``repro stream --json``).

Request::

    {"v": 1, "id": <any>, "op": "lookup", "params": {"domain": ...}}

Response::

    {"v": 1, "id": <echoed>, "ok": true, "result": {...}}
    {"v": 1, "id": <echoed>, "ok": false,
     "error": {"code": "rate-limited", "message": ..., "retry_after": 3}}

Operations: ``lookup`` (point query), ``history`` (interval history),
``aggregate`` (provider-level counters), ``snapshot`` (per-scope live
counters), ``health`` (liveness + index version; never rate-limited).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

#: Bump when the request/response layout changes incompatibly.
PROTOCOL_VERSION = 1

#: Hard bound on one framed request line (bytes, newline included).
MAX_REQUEST_BYTES = 64 * 1024

#: Every operation the dispatcher understands.
OPERATIONS: Tuple[str, ...] = (
    "lookup", "history", "aggregate", "snapshot", "health",
)

# Error codes.
BAD_REQUEST = "bad-request"
UNKNOWN_OP = "unknown-op"
BAD_PARAMS = "bad-params"
TOO_LARGE = "too-large"
RATE_LIMITED = "rate-limited"
BLOCKED = "blocked"


class ProtocolError(ValueError):
    """A request frame the server cannot honour (code + message)."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


def canonical_json(payload: object) -> str:
    """The canonical text form: sorted keys, no whitespace."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    )


def encode_frame(payload: Mapping[str, object]) -> bytes:
    """One canonical newline-terminated protocol frame."""
    return canonical_json(payload).encode("utf-8") + b"\n"


@dataclass(frozen=True)
class Request:
    """A decoded, validated request."""

    op: str
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Echoed verbatim in the response (client correlation).
    id: Optional[object] = None

    def to_frame(self) -> bytes:
        return encode_frame(
            {
                "v": PROTOCOL_VERSION,
                "id": self.id,
                "op": self.op,
                "params": dict(sorted(self.params.items())),
            }
        )


def decode_request(line: bytes) -> Request:
    """Parse and validate one request line.

    Raises :class:`ProtocolError` (with a wire error code) on any
    malformed input; the transport never sees raw JSON errors.
    """
    if len(line) > MAX_REQUEST_BYTES:
        raise ProtocolError(
            TOO_LARGE,
            f"request exceeds {MAX_REQUEST_BYTES} bytes",
        )
    try:
        document = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(
            BAD_REQUEST, f"request is not valid JSON: {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise ProtocolError(BAD_REQUEST, "request must be a JSON object")
    version = document.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            BAD_REQUEST,
            f"unsupported protocol version {version!r} "
            f"(this server speaks {PROTOCOL_VERSION})",
        )
    op = document.get("op")
    if not isinstance(op, str) or op not in OPERATIONS:
        raise ProtocolError(
            UNKNOWN_OP,
            f"unknown op {op!r}; expected one of {', '.join(OPERATIONS)}",
        )
    params = document.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(BAD_PARAMS, "params must be a JSON object")
    return Request(op=op, params=params, id=document.get("id"))


def ok_response(
    request_id: Optional[object], result: Mapping[str, object]
) -> Dict[str, object]:
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": True,
        "result": dict(sorted(result.items())),
    }


def error_response(
    request_id: Optional[object],
    code: str,
    message: str,
    retry_after: Optional[int] = None,
) -> Dict[str, object]:
    error: Dict[str, object] = {"code": code, "message": message}
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": error,
    }


def param_str(
    params: Mapping[str, Any], name: str, default: Optional[str] = None
) -> str:
    """A required (or defaulted) string parameter."""
    value = params.get(name, default)
    if not isinstance(value, str):
        raise ProtocolError(
            BAD_PARAMS, f"param {name!r} must be a string"
        )
    return value


def param_opt_int(
    params: Mapping[str, Any], name: str
) -> Optional[int]:
    """An optional integer parameter (bool is not an int here)."""
    value = params.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            BAD_PARAMS, f"param {name!r} must be an integer"
        )
    return value


def param_opt_number(
    params: Mapping[str, Any], name: str
) -> Optional[float]:
    """An optional non-negative number (int or float, never bool)."""
    value = params.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            BAD_PARAMS, f"param {name!r} must be a number"
        )
    if value < 0:
        raise ProtocolError(
            BAD_PARAMS, f"param {name!r} must be non-negative"
        )
    return float(value)
