"""Protocol clients: the asyncio connection and sync conveniences.

:class:`ServeClient` is one framed connection — what an operator
integration would embed. The module-level helpers wrap it for callers
without an event loop (tests, the CLI self-test, benchmarks): one-shot
requests, and a concurrent mix spread over several connections.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.serve.protocol import Request

#: One queued request: ``(op, params)``.
RequestSpec = Tuple[str, Mapping[str, Any]]


class ServeClient:
    """One newline-framed protocol connection."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self._reader = reader
        self._writer = writer
        self._next_id = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def call(
        self,
        op: str,
        params: Optional[Mapping[str, Any]] = None,
        request_id: Optional[object] = None,
    ) -> Dict[str, Any]:
        """Send one request, await its response document."""
        if request_id is None:
            self._next_id += 1
            request_id = self._next_id
        frame = Request(
            op=op, params=dict(params or {}), id=request_id
        ).to_frame()
        return await self.call_frame(frame)

    async def call_frame(self, frame: bytes) -> Dict[str, Any]:
        """Send a raw frame (tests use this for malformed input)."""
        self._writer.write(frame)
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        document = json.loads(line.decode("utf-8"))
        if not isinstance(document, dict):
            raise ValueError("response is not a JSON object")
        return document

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _run_mix(
    host: str,
    port: int,
    requests: Sequence[RequestSpec],
    connections: int,
) -> List[Dict[str, Any]]:
    connections = max(1, min(connections, len(requests) or 1))
    clients = [
        await ServeClient.connect(host, port)
        for _ in range(connections)
    ]
    try:
        lanes: List[List[Tuple[int, RequestSpec]]] = [
            [] for _ in range(connections)
        ]
        for position, spec in enumerate(requests):
            lanes[position % connections].append((position, spec))

        async def run_lane(
            client: ServeClient, lane: List[Tuple[int, RequestSpec]]
        ) -> List[Tuple[int, Dict[str, Any]]]:
            responses = []
            for position, (op, params) in lane:
                responses.append(
                    (position, await client.call(op, params))
                )
            return responses

        gathered = await asyncio.gather(
            *(
                run_lane(client, lane)
                for client, lane in zip(clients, lanes)
            )
        )
    finally:
        for client in clients:
            await client.close()
    ordered: List[Optional[Dict[str, Any]]] = [None] * len(requests)
    for lane_responses in gathered:
        for position, response in lane_responses:
            ordered[position] = response
    return [response for response in ordered if response is not None]


def request_once(
    host: str,
    port: int,
    op: str,
    params: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """One-shot synchronous request (opens and closes a connection)."""

    async def run() -> Dict[str, Any]:
        client = await ServeClient.connect(host, port)
        try:
            return await client.call(op, params)
        finally:
            await client.close()

    return asyncio.run(run())


def request_mix(
    host: str,
    port: int,
    requests: Sequence[RequestSpec],
    connections: int = 4,
) -> List[Dict[str, Any]]:
    """Run *requests* concurrently over up to *connections* connections.

    Responses come back in request order regardless of how the lanes
    interleaved on the wire.
    """
    return asyncio.run(_run_mix(host, port, requests, connections))
