"""repro.serve — the live, self-protecting adoption query service.

The streaming engine answers queries in-process (:class:`QueryAPI`);
this package promotes that read path to a concurrent network service
over atomic snapshot indexes:

* :class:`ServeIndex` / :class:`SnapshotSwapper` — immutable
  read-optimized indexes rebuilt after each completed ingest day and
  swapped atomically, so readers never block ingest and never observe
  a torn day;
* :mod:`~repro.serve.protocol` — the versioned, canonically-encoded
  newline-JSON wire protocol (lookup / history / aggregate / snapshot /
  health);
* :class:`ServeDispatcher` / :class:`ServeServer` /
  :class:`ThreadedServer` — transport-independent dispatch and the
  asyncio loop with bounded framing and graceful drain;
* :class:`SlidingWindowLimiter` / :class:`TokenBucketLimiter` /
  :class:`AdmissionGuard` — per-client self-protection on injected
  logical ticks: rate limits, burst detection, adaptive throttling,
  auto-block with healing;
* :class:`ServeClient` — the asyncio client (plus sync helpers).

Every served answer is byte-identical to the batch/:class:`QueryAPI`
answer for the same day (``tests/serve/test_equivalence.py`` proves it
at checkpoint days while ingest runs concurrently); see
``docs/SERVING.md``.
"""

from repro.serve.client import ServeClient, request_mix, request_once
from repro.serve.guard import AdmissionGuard, Decision
from repro.serve.index import (
    ScopeIndex,
    ServeError,
    ServeIndex,
    SnapshotSwapper,
)
from repro.serve.protocol import (
    MAX_REQUEST_BYTES,
    OPERATIONS,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    canonical_json,
    decode_request,
    encode_frame,
)
from repro.serve.ratelimit import (
    RateLimitStrategy,
    SlidingWindowLimiter,
    TokenBucketLimiter,
)
from repro.serve.server import (
    ServeDispatcher,
    ServeServer,
    ThreadedServer,
)

__all__ = [
    "AdmissionGuard",
    "Decision",
    "MAX_REQUEST_BYTES",
    "OPERATIONS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RateLimitStrategy",
    "Request",
    "ScopeIndex",
    "ServeClient",
    "ServeDispatcher",
    "ServeError",
    "ServeIndex",
    "ServeServer",
    "SlidingWindowLimiter",
    "SnapshotSwapper",
    "ThreadedServer",
    "TokenBucketLimiter",
    "canonical_json",
    "decode_request",
    "encode_frame",
    "request_mix",
    "request_once",
]
