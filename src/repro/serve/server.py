"""The asyncio query server and its transport-independent dispatcher.

Split on purpose:

* :class:`ServeDispatcher` maps one decoded request to one response
  dict, consulting the admission guard and reading from whatever
  :class:`~repro.serve.index.ServeIndex` the snapshot swapper currently
  publishes. It is synchronous and owns no sockets, so the equivalence
  suite can drive it directly and byte-compare responses without a
  network in the loop.
* :class:`ServeServer` is the asyncio loop around it: newline-framed
  requests with a hard size bound, one response per request, graceful
  drain on shutdown (stop accepting, let in-flight requests finish,
  close idle connections). It runs its own accept loop rather than
  ``asyncio.start_server`` so that every accepted socket is owned by a
  tracked task from the moment ``accept()`` returns — with
  ``start_server``, a connection accepted while the server closes can
  be stranded inside asyncio's accept pipeline with no owner at all
  (the transport constructor trips ``Server._attach``'s closed-server
  assertion and the socket leaks, holding the peer open forever).
* :class:`ThreadedServer` hosts a server on a dedicated event-loop
  thread so a synchronous ingest loop (or a test) can serve and ingest
  concurrently — the designed deployment shape.

Ticks: admission decisions run on logical ticks from an injected
``tick_source``. The default advances one tick per guarded request,
which makes rate limits mean "per N requests" — deterministic and
replayable. A deployment that wants wall-time windows injects a
monotonic millisecond source at the edge (the CLI does); the decision
path itself stays clock-free.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import threading
from typing import Callable, Dict, Optional, Set, Tuple

from repro.serve import guard as guard_reasons
from repro.serve import protocol
from repro.serve.guard import AdmissionGuard
from repro.serve.index import ServeError, ServeIndex
from repro.serve.protocol import (
    MAX_REQUEST_BYTES,
    ProtocolError,
    Request,
    encode_frame,
    error_response,
    ok_response,
    param_opt_int,
    param_opt_number,
    param_str,
)

#: Where an ``aggregate`` answer may come from.
AGGREGATE_SOURCES = ("exact", "sketch", "auto")


def _counter_ticks() -> Callable[[], int]:
    """The default tick source: one tick per guarded request."""
    counter = itertools.count()

    def next_tick() -> int:
        return next(counter)

    return next_tick


class ServeDispatcher:
    """Request → response over the currently published index."""

    def __init__(
        self,
        index_source: Callable[[], ServeIndex],
        guard: Optional[AdmissionGuard] = None,
        tick_source: Optional[Callable[[], int]] = None,
    ):
        self._index_source = index_source
        self._guard = guard
        self._tick_source = tick_source or _counter_ticks()
        self.requests_handled = 0

    @property
    def guard(self) -> Optional[AdmissionGuard]:
        return self._guard

    def handle_line(self, line: bytes, client: str) -> bytes:
        """One framed request in, one canonical framed response out."""
        try:
            request = protocol.decode_request(line)
        except ProtocolError as exc:
            return encode_frame(
                error_response(None, exc.code, exc.message)
            )
        return encode_frame(self.handle_request(request, client))

    def handle_request(
        self, request: Request, client: str
    ) -> Dict[str, object]:
        """Admission, then dispatch. ``health`` is never rate-limited."""
        if self._guard is not None and request.op != "health":
            decision = self._guard.admit(client, self._tick_source())
            if not decision.allowed:
                code = (
                    protocol.BLOCKED
                    if decision.reason == guard_reasons.BLOCKED
                    else protocol.RATE_LIMITED
                )
                return error_response(
                    request.id,
                    code,
                    f"request denied ({decision.reason})",
                    retry_after=decision.retry_after,
                )
        try:
            result = self._dispatch(request)
        except ProtocolError as exc:
            return error_response(request.id, exc.code, exc.message)
        except ServeError as exc:
            return error_response(
                request.id, protocol.BAD_PARAMS, str(exc)
            )
        self.requests_handled += 1
        return ok_response(request.id, result)

    # -- operations ----------------------------------------------------------

    def _dispatch(self, request: Request) -> Dict[str, object]:
        index = self._index_source()
        if request.op == "lookup":
            return index.lookup(
                param_str(request.params, "domain"),
                scope=param_str(request.params, "scope", "gtld"),
            )
        if request.op == "history":
            return index.history_payload(
                param_str(request.params, "domain")
            )
        if request.op == "aggregate":
            return self._aggregate(index, request)
        if request.op == "snapshot":
            scope = param_str(request.params, "scope", "")
            if scope:
                snapshot = index.live_snapshot(scope).to_dict()
                snapshot["version"] = index.version
                return snapshot
            return index.snapshot_payload()
        if request.op == "health":
            return self._health(index)
        raise ProtocolError(  # pragma: no cover - decode already rejects
            protocol.UNKNOWN_OP, f"unknown op {request.op!r}"
        )

    def _aggregate(
        self, index: ServeIndex, request: Request
    ) -> Dict[str, object]:
        """The ``aggregate`` op, routed exact / sketch / auto.

        ``source=exact`` (the default) answers from the exact indexes
        and is byte-identical to the pre-sketch protocol — the
        equivalence suite pins that. ``source=sketch`` answers from the
        frozen sketch plane in O(1) memory. ``source=auto`` prefers the
        sketch plane but falls back to exact when the plane is absent
        or when the requested ``max_error`` (an absolute count) is
        tighter than the sketch's ``εN`` guarantee — the fallback
        contract ``docs/SKETCHES.md`` documents.
        """
        scope = param_str(request.params, "scope", "gtld")
        day = param_opt_int(request.params, "day")
        source = param_str(request.params, "source", "exact")
        if source not in AGGREGATE_SOURCES:
            raise ProtocolError(
                protocol.BAD_PARAMS,
                f"param 'source' must be one of "
                f"{', '.join(AGGREGATE_SOURCES)}",
            )
        max_error = param_opt_number(request.params, "max_error")
        k = param_opt_int(request.params, "k")
        provider = request.params.get("provider")
        if provider is not None and not isinstance(provider, str):
            raise ProtocolError(
                protocol.BAD_PARAMS,
                "param 'provider' must be a string",
            )
        if source == "auto":
            fallback = None
            try:
                bound = index.sketch_guarantee(scope)
            except ServeError:
                fallback = "sketch plane unavailable"
            else:
                if max_error is not None and bound > max_error:
                    fallback = (
                        f"sketch error bound {bound:.1f} exceeds "
                        f"max_error {max_error:g}"
                    )
            if fallback is None:
                source = "sketch"
            else:
                result = self._aggregate_exact(
                    index, scope, day, provider
                )
                result["source"] = "exact"
                result["fallback"] = fallback
                return result
        if source == "sketch":
            result = index.aggregate_sketch(
                scope, day=day, k=k if k is not None else 10
            )
            if provider is not None:
                sketches = index.scope(scope).sketches
                assert sketches is not None  # aggregate_sketch checked
                at_day = result["day"]
                return {
                    "scope": scope,
                    "day": at_day,
                    "source": "sketch",
                    "provider": provider,
                    "adoption_estimate": (
                        sketches.adoption_estimate(provider, at_day)
                        if isinstance(at_day, int)
                        else 0
                    ),
                    "distinct_estimate": int(
                        round(sketches.provider_distinct(provider))
                    ),
                    "error_bound": round(
                        sketches.adoption_error_bound(), 3
                    ),
                }
            return result
        return self._aggregate_exact(index, scope, day, provider)

    @staticmethod
    def _aggregate_exact(
        index: ServeIndex,
        scope: str,
        day: Optional[int],
        provider: Optional[str],
    ) -> Dict[str, object]:
        if provider is None:
            return index.aggregate(scope, day=day)
        return {
            "scope": scope,
            "day": day if day is not None else index.scope(scope).day,
            "provider": provider,
            "adoption": index.adoption(provider, day=day, scope=scope),
        }

    def _health(self, index: ServeIndex) -> Dict[str, object]:
        health: Dict[str, object] = {
            "status": "ok",
            "version": index.version,
            "days": {
                name: index.scope(name).day
                for name in index.scope_names
            },
            "requests_handled": self.requests_handled,
        }
        if self._guard is not None:
            health["guard"] = self._guard.stats()
        return health


def peer_host(peername: object) -> str:
    """Rate-limit key for a connection: the peer host."""
    if isinstance(peername, tuple) and peername:
        return str(peername[0])
    return str(peername)


class ServeServer:
    """The asyncio transport: framing, bounds, graceful drain."""

    def __init__(
        self,
        dispatcher: ServeDispatcher,
        host: str = "127.0.0.1",
        port: int = 0,
        max_request_bytes: int = MAX_REQUEST_BYTES,
        client_key: Callable[[object], str] = peer_host,
    ):
        self._dispatcher = dispatcher
        self._host = host
        self._port = port
        self._max_request_bytes = max_request_bytes
        self._client_key = client_key
        self._listen_sock: Optional[socket.socket] = None
        self._accept_task: Optional["asyncio.Task[None]"] = None
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        self._draining = False
        self._connections: Dict[object, asyncio.StreamWriter] = {}
        self._busy: Set[object] = set()
        self.connections_served = 0

    @property
    def dispatcher(self) -> ServeDispatcher:
        return self._dispatcher

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns ``(host, port)``."""
        loop = asyncio.get_running_loop()
        sock = socket.create_server((self._host, self._port))
        sock.setblocking(False)
        self._listen_sock = sock
        self._accept_task = loop.create_task(self._accept_loop(loop, sock))
        sockname = sock.getsockname()
        return str(sockname[0]), int(sockname[1])

    async def serve_forever(self) -> None:
        accept_task = self._accept_task
        assert accept_task is not None, "call start() first"
        try:
            await accept_task
        except asyncio.CancelledError:
            if not accept_task.cancelled():
                raise

    async def _accept_loop(
        self, loop: asyncio.AbstractEventLoop, sock: socket.socket
    ) -> None:
        while True:
            try:
                conn, _ = await loop.sock_accept(sock)
            except OSError:
                return
            # No await between accept and task registration: from the
            # moment the socket exists in userspace it is owned by
            # exactly one tracked task, which drain() can account for.
            task = loop.create_task(self._run_connection(loop, conn))
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)

    async def _run_connection(
        self, loop: asyncio.AbstractEventLoop, conn: socket.socket
    ) -> None:
        try:
            # The StreamReader limit enforces the request size bound at
            # the transport: an overlong line surfaces as an exception
            # in the read loop instead of buffering without bound.
            reader = asyncio.StreamReader(
                limit=self._max_request_bytes + 2, loop=loop
            )
            reader_protocol = asyncio.StreamReaderProtocol(reader, loop=loop)
            transport, _ = await loop.connect_accepted_socket(
                lambda: reader_protocol, conn
            )
        except BaseException:
            conn.close()
            raise
        writer = asyncio.StreamWriter(transport, reader_protocol, reader, loop)
        await self._serve_connection(reader, writer)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        token = object()
        self._connections[token] = writer
        self.connections_served += 1
        client = self._client_key(writer.get_extra_info("peername"))
        try:
            while not self._draining:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversized frame: answer once, then hang up — the
                    # stream is no longer in sync with the framing.
                    writer.write(
                        encode_frame(
                            error_response(
                                None,
                                protocol.TOO_LARGE,
                                f"request exceeds "
                                f"{self._max_request_bytes} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                self._busy.add(token)
                try:
                    response = self._dispatcher.handle_line(line, client)
                    writer.write(response)
                    await writer.drain()
                finally:
                    self._busy.discard(token)
        except ConnectionError:
            pass
        finally:
            # Unregister only once the transport has fully closed, so
            # drain() returning means every accepted socket is gone —
            # an event loop stopped right after drain strands nothing.
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._connections.pop(token, None)

    async def drain(self) -> None:
        """Graceful shutdown: no new work, in-flight responses finish."""
        self._draining = True
        if self._accept_task is not None:
            self._accept_task.cancel()
            try:
                await self._accept_task
            except asyncio.CancelledError:
                pass
            self._accept_task = None
        if self._listen_sock is not None:
            # Handshakes the kernel completed that we never accepted
            # are reset by the kernel when the listener closes.
            self._listen_sock.close()
            self._listen_sock = None
        # Nudge idle connections: anything blocked in readline entered
        # it before _draining flipped, so it is already registered and
        # closing its writer wakes it with EOF. Connections still
        # mid-setup need no nudge — they check the flag before their
        # first read and close themselves.
        for token, writer in list(self._connections.items()):
            if token not in self._busy:
                writer.close()
        # Every accepted socket is owned by exactly one tracked task,
        # and every task closes its socket on all paths — so awaiting
        # the tasks is the proof that no connection outlives the
        # drain, in-flight requests included. Only after this may the
        # event loop be stopped.
        if self._conn_tasks:
            await asyncio.gather(
                *list(self._conn_tasks), return_exceptions=True
            )


class ThreadedServer:
    """A :class:`ServeServer` on its own event-loop thread.

    The deployment shape: the main thread ingests partitions (which
    rebuilds and swaps indexes via the engine's apply listener) while
    this thread answers queries from the last published index. Also a
    context manager::

        with ThreadedServer(dispatcher) as (host, port):
            ...
    """

    def __init__(
        self,
        dispatcher: ServeDispatcher,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._server = ServeServer(dispatcher, host=host, port=port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self.address: Optional[Tuple[str, int]] = None

    @property
    def server(self) -> ServeServer:
        return self._server

    def start(self) -> Tuple[str, int]:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(
            self._server.start(), self._loop
        )
        self.address = future.result(timeout=30)
        return self.address

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        asyncio.run_coroutine_threadsafe(
            self._server.drain(), self._loop
        ).result(timeout=30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
