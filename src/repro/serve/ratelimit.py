"""Per-client rate-limiting strategies on a logical-tick clock.

Both strategies are pure functions of their inputs: time is an integer
tick injected by the caller (the server wires in its own tick source;
tests drive arbitrary adversarial schedules), so admission decisions are
replayable and the determinism analyzer's wall-clock rule holds for this
package exactly as it does for the ingest engine.

* :class:`SlidingWindowLimiter` — at most ``limit`` admissions in any
  trailing ``window`` ticks, per client. Exact (it keeps the admitted
  tick deque), so the bound holds for every window placement, not just
  aligned ones.
* :class:`TokenBucketLimiter` — a bucket of ``capacity`` tokens earning
  one token every ``ticks_per_token`` ticks, per client: bounded bursts
  plus a sustained-rate ceiling.

A strategy answers one question — "may this client's request pass at
this tick?" — and never blocks; escalation (bursts, auto-block,
healing) lives in :mod:`repro.serve.guard` on top.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Protocol, Tuple


class RateLimitStrategy(Protocol):
    """The strategy interface the admission guard composes."""

    def allow(self, client: str, tick: int) -> bool:
        """Admit (and record) one request from *client* at *tick*."""
        ...

    def retry_after(self, client: str, tick: int) -> int:
        """Ticks until a denied *client* could next be admitted."""
        ...

    def forget(self, client: str) -> None:
        """Drop all state for *client* (quarantine release/healing)."""
        ...


class SlidingWindowLimiter:
    """At most *limit* admissions in any trailing *window* ticks."""

    def __init__(self, limit: int, window: int):
        if limit < 1:
            raise ValueError("limit must be positive")
        if window < 1:
            raise ValueError("window must be positive")
        self.limit = limit
        self.window = window
        self._admitted: Dict[str, Deque[int]] = {}

    def _prune(self, events: Deque[int], tick: int) -> None:
        floor = tick - self.window
        while events and events[0] <= floor:
            events.popleft()

    def allow(self, client: str, tick: int) -> bool:
        events = self._admitted.get(client)
        if events is None:
            events = self._admitted[client] = deque()
        self._prune(events, tick)
        if len(events) >= self.limit:
            return False
        events.append(tick)
        return True

    def retry_after(self, client: str, tick: int) -> int:
        events = self._admitted.get(client)
        if not events or len(events) < self.limit:
            return 0
        # The oldest admitted tick leaves the window at oldest + window.
        return max(0, events[0] + self.window - tick)

    def forget(self, client: str) -> None:
        self._admitted.pop(client, None)


class TokenBucketLimiter:
    """A *capacity*-token bucket refilling 1/*ticks_per_token*.

    Integer arithmetic throughout: a client's balance after any request
    schedule is a deterministic function of the schedule. An idle client
    banks at most *capacity* tokens — bursts are bounded even after long
    silence — and the sustained admission rate can never exceed one per
    ``ticks_per_token`` ticks plus the initial burst.
    """

    def __init__(self, capacity: int, ticks_per_token: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if ticks_per_token < 1:
            raise ValueError("ticks_per_token must be positive")
        self.capacity = capacity
        self.ticks_per_token = ticks_per_token
        #: client → (tokens, tick the balance was computed at).
        self._buckets: Dict[str, Tuple[int, int]] = {}

    def _balance(self, client: str, tick: int) -> Tuple[int, int]:
        state = self._buckets.get(client)
        if state is None:
            # A new client starts with a full bucket.
            return self.capacity, tick
        tokens, last = state
        if tick <= last:
            return tokens, last
        earned = (tick - last) // self.ticks_per_token
        if earned:
            tokens = min(self.capacity, tokens + earned)
            last = (
                tick
                if tokens >= self.capacity
                else last + earned * self.ticks_per_token
            )
        return tokens, last

    def allow(self, client: str, tick: int) -> bool:
        tokens, last = self._balance(client, tick)
        if tokens < 1:
            self._buckets[client] = (tokens, last)
            return False
        self._buckets[client] = (tokens - 1, last)
        return True

    def retry_after(self, client: str, tick: int) -> int:
        tokens, last = self._balance(client, tick)
        if tokens >= 1:
            return 0
        next_token = last + self.ticks_per_token
        return max(0, next_token - tick)

    def forget(self, client: str) -> None:
        self._buckets.pop(client, None)
