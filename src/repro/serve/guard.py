"""Burst detection, adaptive throttling and auto-block escalation.

The strategies in :mod:`repro.serve.ratelimit` bound a *compliant*
client's request rate; this guard handles the rest of the threat model
of a service that measures DDoS protection and is therefore itself a
target:

* **burst detection** — more than ``burst_limit`` arrivals (admitted or
  not) inside ``burst_window`` ticks flips the client into a throttled
  state, independent of the base strategy;
* **adaptive throttling** — while throttled, only every
  ``throttle_factor``-th request is even offered to the base strategy,
  so a hammering client degrades gracefully instead of binarily;
* **auto-block escalation** — accumulated violations (strategy denials
  and burst trips) turn into a hard block whose duration doubles per
  repeat offence; a block expires on its own (release by tick), and a
  healed client — ``heal_after`` consecutive admissions without a
  violation — is indistinguishable from a brand-new one.

Everything is keyed per client and runs on the same injected logical
ticks as the strategies: no wall clock anywhere in the decision path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.serve.ratelimit import RateLimitStrategy

#: Decision reasons.
OK = "ok"
RATE_LIMITED = "rate-limited"
BURST = "burst"
THROTTLED = "throttled"
BLOCKED = "blocked"


@dataclass(frozen=True)
class Decision:
    """The guard's verdict for one request."""

    allowed: bool
    reason: str
    #: Ticks until a retry could succeed (0 when unknown/now).
    retry_after: int = 0


@dataclass
class _ClientState:
    arrivals: Deque[int] = field(default_factory=deque)
    violations: int = 0
    offences: int = 0
    clean_streak: int = 0
    blocked_until: Optional[int] = None
    throttled_until: Optional[int] = None
    throttle_phase: int = 0


class AdmissionGuard:
    """Per-client admission control over a pluggable base strategy."""

    def __init__(
        self,
        strategy: RateLimitStrategy,
        burst_limit: int = 30,
        burst_window: int = 10,
        throttle_ticks: int = 50,
        throttle_factor: int = 2,
        block_after: int = 5,
        block_ticks: int = 500,
        escalation: int = 2,
        max_block_ticks: int = 100_000,
        heal_after: int = 20,
    ):
        if burst_limit < 1 or burst_window < 1:
            raise ValueError("burst parameters must be positive")
        if throttle_factor < 1:
            raise ValueError("throttle_factor must be positive")
        if block_after < 1 or block_ticks < 1 or escalation < 1:
            raise ValueError("block parameters must be positive")
        self.strategy = strategy
        self.burst_limit = burst_limit
        self.burst_window = burst_window
        self.throttle_ticks = throttle_ticks
        self.throttle_factor = throttle_factor
        self.block_after = block_after
        self.block_ticks = block_ticks
        self.escalation = escalation
        self.max_block_ticks = max_block_ticks
        self.heal_after = heal_after
        self._clients: Dict[str, _ClientState] = {}
        #: reason → decision count, for the health endpoint.
        self.decisions: Dict[str, int] = {}

    # -- the decision path ---------------------------------------------------

    def admit(self, client: str, tick: int) -> Decision:
        """Decide one request from *client* arriving at *tick*."""
        state = self._clients.get(client)
        if state is None:
            state = self._clients[client] = _ClientState()
        if state.blocked_until is not None:
            if tick < state.blocked_until:
                return self._record(
                    Decision(
                        False, BLOCKED,
                        retry_after=state.blocked_until - tick,
                    )
                )
            # Release by tick: the block served its time.
            state.blocked_until = None
            state.violations = 0
        state.arrivals.append(tick)
        floor = tick - self.burst_window
        while state.arrivals and state.arrivals[0] <= floor:
            state.arrivals.popleft()
        if len(state.arrivals) > self.burst_limit:
            state.throttled_until = tick + self.throttle_ticks
            return self._record(
                self._violation(
                    client, state, tick, BURST,
                    retry_after=self.burst_window,
                )
            )
        if (
            state.throttled_until is not None
            and tick < state.throttled_until
        ):
            state.throttle_phase += 1
            if state.throttle_phase % self.throttle_factor != 0:
                return self._record(
                    Decision(
                        False, THROTTLED,
                        retry_after=1,
                    )
                )
        elif state.throttled_until is not None:
            state.throttled_until = None
            state.throttle_phase = 0
        if not self.strategy.allow(client, tick):
            return self._record(
                self._violation(
                    client, state, tick, RATE_LIMITED,
                    retry_after=self.strategy.retry_after(client, tick),
                )
            )
        state.clean_streak += 1
        if state.clean_streak >= self.heal_after:
            # Healing: sustained good behaviour wipes the rap sheet.
            state.violations = 0
            state.offences = 0
            state.clean_streak = 0
        return self._record(Decision(True, OK))

    def _violation(
        self,
        client: str,
        state: _ClientState,
        tick: int,
        reason: str,
        retry_after: int,
    ) -> Decision:
        state.clean_streak = 0
        state.violations += 1
        if state.violations < self.block_after:
            return Decision(False, reason, retry_after=retry_after)
        duration = min(
            self.max_block_ticks,
            self.block_ticks * self.escalation ** min(state.offences, 16),
        )
        state.offences += 1
        state.violations = 0
        state.blocked_until = tick + duration
        state.arrivals.clear()
        state.throttled_until = None
        state.throttle_phase = 0
        return Decision(False, BLOCKED, retry_after=duration)

    def _record(self, decision: Decision) -> Decision:
        self.decisions[decision.reason] = (
            self.decisions.get(decision.reason, 0) + 1
        )
        return decision

    # -- introspection / manual control --------------------------------------

    def is_blocked(self, client: str, tick: int) -> bool:
        state = self._clients.get(client)
        return (
            state is not None
            and state.blocked_until is not None
            and tick < state.blocked_until
        )

    def blocked_clients(self, tick: int) -> Dict[str, int]:
        """client → ticks remaining, for currently blocked clients."""
        blocked: Dict[str, int] = {}
        for client in sorted(self._clients):
            state = self._clients[client]
            if state.blocked_until is not None and tick < state.blocked_until:
                blocked[client] = state.blocked_until - tick
        return blocked

    def release(self, client: str) -> None:
        """Manually clear *client*'s guard and strategy state."""
        self._clients.pop(client, None)
        self.strategy.forget(client)

    def stats(self) -> Dict[str, int]:
        """Decision counters by reason (canonical order)."""
        return {
            reason: self.decisions[reason]
            for reason in sorted(self.decisions)
        }
