"""Measurement row schema.

A :class:`DomainObservation` is everything the platform records for one
domain on one day: NS names, apex addresses, the ``www`` CNAME chain and
its expansion addresses, and (after enrichment) the origin ASNs of every
address. An :class:`ObservationSegment` is the run-length-compressed form —
the same payload, valid over a day interval — that the fast pipeline uses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Optional, Tuple

from repro.dnscore.name import DomainName

#: The platform queries A, AAAA and NS for the apex plus A/AAAA for www
#: (§3.1); we count four measurement data points per domain per day, which
#: is what Table 1's #DPs column tallies.
MEASUREMENTS_PER_DOMAIN_DAY = 4


def sld_of(name_text: str) -> Optional[str]:
    """The registrable SLD of *name_text*, as text (None if unknown)."""
    try:
        sld = DomainName.from_text(name_text).sld()
    except ValueError:
        return None
    return sld.to_text() if sld is not None else None


@dataclass(frozen=True)
class DomainObservation:
    """One domain's measured DNS state on one day."""

    day: int
    domain: str
    tld: str
    ns_names: Tuple[str, ...]
    apex_addrs: Tuple[str, ...]
    www_cnames: Tuple[str, ...] = ()
    www_addrs: Tuple[str, ...] = ()
    apex_addrs6: Tuple[str, ...] = ()
    www_addrs6: Tuple[str, ...] = ()
    #: Origin ASNs of all observed addresses (filled by enrichment).
    asns: FrozenSet[int] = frozenset()

    def all_addresses(self) -> Tuple[str, ...]:
        # dict.fromkeys: first-seen order, O(n) — same order and dedup
        # semantics as the old linear `seen` scan without the O(n^2).
        return tuple(
            dict.fromkeys(
                self.apex_addrs + self.www_addrs
                + self.apex_addrs6 + self.www_addrs6
            )
        )

    def ns_slds(self) -> FrozenSet[str]:
        """SLDs referenced by the NS records (§3.3 detection input)."""
        return frozenset(
            sld for sld in (sld_of(ns) for ns in self.ns_names)
            if sld is not None
        )

    def cname_slds(self) -> FrozenSet[str]:
        """SLDs referenced anywhere in the www CNAME expansion."""
        return frozenset(
            sld for sld in (sld_of(c) for c in self.www_cnames)
            if sld is not None
        )

    def is_dark(self) -> bool:
        """True when the measurement yielded no usable records at all."""
        return not (
            self.ns_names or self.apex_addrs or self.www_addrs
            or self.www_cnames
        )

    def with_asns(self, asns: FrozenSet[int]) -> "DomainObservation":
        return replace(self, asns=asns)


@dataclass(frozen=True)
class ObservationSegment:
    """A :class:`DomainObservation` valid over ``[start, end)`` days."""

    start: int
    end: int
    observation: DomainObservation

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("segment end must be after start")

    @property
    def days(self) -> int:
        return self.end - self.start

    def at(self, day: int) -> DomainObservation:
        """The daily observation for *day* within this segment."""
        if not self.start <= day < self.end:
            raise ValueError(f"day {day} outside segment")
        return replace(self.observation, day=day)
