"""Columnar observation storage with compression accounting.

The real platform lands measurements in Parquet on a Hadoop cluster;
Table 1 reports per-source data-point counts and compressed sizes. This
store keeps observations in per-``(source, day)`` partitions as columns
(one list per field), can encode a partition to a compact dictionary+RLE
byte format (zlib-compressed, Parquet-in-spirit), tracks the resulting
byte sizes so the Table 1 reproduction can report measured-vs-extrapolated
storage, and can persist/load partitions as files on disk.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    cast,
)

from repro.batch.batch import BatchBuilder, ObservationBatch
from repro.measurement.snapshot import (
    DomainObservation,
    MEASUREMENTS_PER_DOMAIN_DAY,
)

_COLUMNS = (
    "domain",
    "tld",
    "ns_names",
    "apex_addrs",
    "www_cnames",
    "www_addrs",
    "apex_addrs6",
    "www_addrs6",
    "asns",
)


class StorageError(Exception):
    """A stored partition is missing, truncated, or fails its checksum.

    Every load-path failure surfaces as this type — never a raw
    ``zlib.error`` / ``JSONDecodeError`` / ``OSError`` leaking encoding
    internals — so callers can degrade by policy (skip the partition,
    quarantine its scope) instead of dying on a damaged segment.
    """


def _encode_column(values: Sequence[Any]) -> bytes:
    """Dictionary+run-length encode one column, then deflate it.

    The format is a JSON head (dictionary and runs of dictionary indexes)
    compressed with zlib — columnar in spirit: repeated values (mass actors
    give identical rows) cost almost nothing, like Parquet dictionary pages.
    """
    dictionary: Dict[str, int] = {}
    runs: List[List[int]] = []
    for value in values:
        key = json.dumps(value, sort_keys=True, separators=(",", ":"))
        index = dictionary.setdefault(key, len(dictionary))
        if runs and runs[-1][0] == index:
            runs[-1][1] += 1
        else:
            runs.append([index, 1])
    payload = json.dumps(
        {"dict": list(dictionary), "runs": runs}, separators=(",", ":")
    ).encode("utf-8")
    return zlib.compress(payload, level=6)


def _decode_column(blob: bytes) -> List[Any]:
    payload = json.loads(zlib.decompress(blob))
    dictionary = [json.loads(key) for key in payload["dict"]]
    values: List[Any] = []
    for index, count in payload["runs"]:
        values.extend([dictionary[index]] * count)
    return values


@dataclass
class PartitionStats:
    """Size accounting for one stored partition."""

    source: str
    day: int
    rows: int
    data_points: int
    encoded_bytes: int


class ColumnStore:
    """In-memory columnar partitions of observations."""

    def __init__(self) -> None:
        self._partitions: Dict[Tuple[str, int], Dict[str, List[Any]]] = {}
        self._encoded: Dict[Tuple[str, int], Dict[str, bytes]] = {}
        #: (source, day, reason) for partitions dropped by a lenient load.
        self.skipped_partitions: List[Tuple[str, int, str]] = []

    # -- writing ------------------------------------------------------------

    def append(
        self, source: str, day: int, observations: Sequence[DomainObservation]
    ) -> None:
        """Write a day's observations into the (source, day) partition."""
        partition = self._partitions.setdefault(
            (source, day), {column: [] for column in _COLUMNS}
        )
        self._encoded.pop((source, day), None)
        for observation in observations:
            partition["domain"].append(observation.domain)
            partition["tld"].append(observation.tld)
            partition["ns_names"].append(list(observation.ns_names))
            partition["apex_addrs"].append(list(observation.apex_addrs))
            partition["www_cnames"].append(list(observation.www_cnames))
            partition["www_addrs"].append(list(observation.www_addrs))
            partition["apex_addrs6"].append(list(observation.apex_addrs6))
            partition["www_addrs6"].append(list(observation.www_addrs6))
            partition["asns"].append(sorted(observation.asns))

    def append_batch(
        self, source: str, day: int, batch: ObservationBatch
    ) -> None:
        """Write a batch into the (source, day) partition.

        Value-identical to ``append(source, day, batch.rows())`` — the
        stored column lists, and therefore the encoded partition bytes
        backing Table 1's size accounting, come out the same — without
        boxing a row view per observation.
        """
        partition = self._partitions.setdefault(
            (source, day), {column: [] for column in _COLUMNS}
        )
        self._encoded.pop((source, day), None)
        names = batch.names
        addresses = batch.addresses
        for index in range(len(batch)):
            partition["domain"].append(names.value(batch.domains[index]))
            partition["tld"].append(names.value(batch.tlds[index]))
            partition["ns_names"].append(
                list(names.values(batch.ns_names[index]))
            )
            partition["apex_addrs"].append(
                list(addresses.texts(batch.apex_addrs[index]))
            )
            partition["www_cnames"].append(
                list(names.values(batch.www_cnames[index]))
            )
            partition["www_addrs"].append(
                list(addresses.texts(batch.www_addrs[index]))
            )
            partition["apex_addrs6"].append(
                list(addresses.texts(batch.apex_addrs6[index]))
            )
            partition["www_addrs6"].append(
                list(addresses.texts(batch.www_addrs6[index]))
            )
            partition["asns"].append(list(batch.asns[index]))

    # -- reading --------------------------------------------------------------

    def partitions(self) -> List[Tuple[str, int]]:
        return sorted(self._partitions)

    def rows(self, source: str, day: int) -> Iterator[DomainObservation]:
        """Re-materialise the observations of one partition."""
        partition = self._partitions.get((source, day))
        if partition is None:
            return
        for index in range(len(partition["domain"])):
            # The row-shaped compatibility path; bulk consumers use
            # batches() instead.
            yield DomainObservation(  # repro: ignore[row-boxing-in-hot-path]
                day=day,
                domain=partition["domain"][index],
                tld=partition["tld"][index],
                ns_names=tuple(partition["ns_names"][index]),
                apex_addrs=tuple(partition["apex_addrs"][index]),
                www_cnames=tuple(partition["www_cnames"][index]),
                www_addrs=tuple(partition["www_addrs"][index]),
                apex_addrs6=tuple(partition["apex_addrs6"][index]),
                www_addrs6=tuple(partition["www_addrs6"][index]),
                asns=frozenset(partition["asns"][index]),
            )

    def row_count(self, source: str, day: int) -> int:
        partition = self._partitions.get((source, day))
        return len(partition["domain"]) if partition else 0

    def batch(
        self,
        source: str,
        day: int,
        builder: Optional[BatchBuilder] = None,
    ) -> ObservationBatch:
        """One partition as a columnar batch — the bulk counterpart of
        :meth:`rows`, interning straight from the stored columns with no
        per-row :class:`DomainObservation` boxing. Pass a shared
        *builder* to intern many partitions into one pool pair.
        """
        out = (
            builder if builder is not None else BatchBuilder()
        ).new_batch()
        partition = self._partitions.get((source, day))
        if partition is None:
            return out
        names = out.names
        addresses = out.addresses
        domains = partition["domain"]
        tlds = partition["tld"]
        ns_names = partition["ns_names"]
        apex_addrs = partition["apex_addrs"]
        www_cnames = partition["www_cnames"]
        www_addrs = partition["www_addrs"]
        apex_addrs6 = partition["apex_addrs6"]
        www_addrs6 = partition["www_addrs6"]
        asns = partition["asns"]
        for index in range(len(domains)):
            out.append_ids(
                day=day,
                domain=names.intern(domains[index]),
                tld=names.intern(tlds[index]),
                ns_names=names.intern_tuple(ns_names[index]),
                www_cnames=names.intern_tuple(www_cnames[index]),
                apex_addrs=addresses.intern_tuple(apex_addrs[index]),
                www_addrs=addresses.intern_tuple(www_addrs[index]),
                apex_addrs6=addresses.intern_tuple(apex_addrs6[index]),
                www_addrs6=addresses.intern_tuple(www_addrs6[index]),
                # append() stores sorted(asns), so the stored column is
                # already in canonical tuple form.
                asns=tuple(asns[index]),
            )
        return out

    def batches(
        self, builder: Optional[BatchBuilder] = None
    ) -> Iterator[Tuple[str, int, ObservationBatch]]:
        """Every partition as ``(source, day, batch)``, in sorted
        partition order, sharing one pool pair across all yields."""
        shared = builder if builder is not None else BatchBuilder()
        for source, day in self.partitions():
            yield source, day, self.batch(source, day, builder=shared)

    # -- encoding and statistics --------------------------------------------------

    def encode_partition(self, source: str, day: int) -> Dict[str, bytes]:
        """Columnar-encode one partition (cached)."""
        key = (source, day)
        encoded = self._encoded.get(key)
        if encoded is None:
            partition = self._partitions[key]
            encoded = {
                column: _encode_column(values)
                for column, values in sorted(partition.items())
            }
            self._encoded[key] = encoded
        return encoded

    def decode_partition(
        self, source: str, day: int
    ) -> Dict[str, List[Any]]:
        """Round-trip check helper: decode an encoded partition."""
        return {
            column: _decode_column(blob)
            for column, blob in self.encode_partition(source, day).items()
        }

    def partition_stats(self, source: str, day: int) -> PartitionStats:
        rows = self.row_count(source, day)
        encoded = self.encode_partition(source, day)
        return PartitionStats(
            source=source,
            day=day,
            rows=rows,
            data_points=rows * MEASUREMENTS_PER_DOMAIN_DAY,
            encoded_bytes=sum(len(blob) for blob in encoded.values()),
        )

    # -- disk persistence ---------------------------------------------------

    def save(self, directory: str) -> List[str]:
        """Write every partition as encoded column files plus a manifest.

        Layout: ``<dir>/<source>/<day>/<column>.col`` (the zlib blobs) and
        ``<dir>/manifest.json``. Returns the file paths written.
        """
        written: List[str] = []
        manifest: List[Dict[str, object]] = []
        for source, day in self.partitions():
            partition_dir = os.path.join(directory, source, str(day))
            os.makedirs(partition_dir, exist_ok=True)
            encoded = self.encode_partition(source, day)
            for column, blob in sorted(encoded.items()):
                path = os.path.join(partition_dir, f"{column}.col")
                with open(path, "wb") as handle:
                    handle.write(blob)
                written.append(path)
            manifest.append(
                {
                    "source": source,
                    "day": day,
                    "rows": self.row_count(source, day),
                    "columns": sorted(encoded),
                    "checksums": {
                        column: zlib.crc32(encoded[column])
                        for column in sorted(encoded)
                    },
                }
            )
        manifest_path = os.path.join(directory, "manifest.json")
        os.makedirs(directory, exist_ok=True)
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle, indent=1)
        written.append(manifest_path)
        return written

    @classmethod
    def load(cls, directory: str, on_error: str = "raise") -> "ColumnStore":
        """Rebuild a store from :meth:`save` output.

        Segment files are verified against the manifest's CRC-32
        checksums (when present — older manifests lack them) and row
        counts. A damaged partition raises :class:`StorageError`, or —
        with ``on_error="skip"`` — is dropped whole and recorded in
        :attr:`skipped_partitions`, so one rotten day costs one day of
        data, not the run.
        """
        if on_error not in ("raise", "skip"):
            raise ValueError("on_error must be 'raise' or 'skip'")
        manifest_path = os.path.join(directory, "manifest.json")
        try:
            with open(manifest_path) as handle:
                manifest = json.load(handle)
        except OSError as exc:
            raise StorageError(f"cannot read manifest: {exc}") from exc
        except ValueError as exc:
            raise StorageError(f"corrupt manifest: {exc}") from exc
        store = cls()
        for entry in manifest:
            source = cast(str, entry["source"])
            day = int(cast(int, entry["day"]))
            try:
                columns = cls._load_partition(directory, entry)
            except (StorageError, OSError) as exc:
                if on_error == "raise":
                    raise
                store.skipped_partitions.append((source, day, str(exc)))
                continue
            store._partitions[(source, day)] = {
                column: columns.get(column, []) for column in _COLUMNS
            }
        return store

    @staticmethod
    def _load_partition(
        directory: str, entry: Dict[str, object]
    ) -> Dict[str, List[Any]]:
        """Read and verify one manifest entry's column files."""
        source = str(entry["source"])
        day = int(cast(int, entry["day"]))
        partition_dir = os.path.join(directory, source, str(day))
        checksums = cast(
            Dict[str, int], entry.get("checksums", {})
        )
        rows = cast(Optional[int], entry.get("rows"))
        columns: Dict[str, List[Any]] = {}
        for column in cast(List[str], entry["columns"]):
            path = os.path.join(partition_dir, f"{column}.col")
            try:
                with open(path, "rb") as handle:
                    blob = handle.read()
            except OSError as exc:
                raise StorageError(
                    f"missing segment file {path}: {exc}"
                ) from exc
            expected = checksums.get(column)
            if expected is not None and zlib.crc32(blob) != expected:
                raise StorageError(f"checksum mismatch in {path}")
            try:
                values = _decode_column(blob)
            except (zlib.error, ValueError, KeyError, IndexError,
                    TypeError) as exc:
                raise StorageError(
                    f"cannot decode segment {path}: {exc}"
                ) from exc
            if rows is not None and len(values) != rows:
                raise StorageError(
                    f"row count mismatch in {path}: "
                    f"{len(values)} != {rows}"
                )
            columns[column] = values
        return columns

    def total_stats(self, source: Optional[str] = None) -> PartitionStats:
        """Aggregate stats over all (or one source's) partitions."""
        rows = 0
        data_points = 0
        encoded_bytes = 0
        days: Set[int] = set()
        for key in self._partitions:
            if source is not None and key[0] != source:
                continue
            stats = self.partition_stats(*key)
            rows += stats.rows
            data_points += stats.data_points
            encoded_bytes += stats.encoded_bytes
            days.add(key[1])
        return PartitionStats(
            source=source or "total",
            day=len(days),
            rows=rows,
            data_points=data_points,
            encoded_bytes=encoded_bytes,
        )
