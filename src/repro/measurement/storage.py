"""Columnar observation storage with compression accounting.

The real platform lands measurements in Parquet on a Hadoop cluster;
Table 1 reports per-source data-point counts and compressed sizes. This
store keeps observations in per-``(source, day)`` partitions as columns
(one list per field), encodes partitions in the v2 binary segment
format (:mod:`repro.store` — dictionary pages, adaptive per-column
codecs, CRC-32 checked), tracks the resulting on-disk byte sizes so the
Table 1 reproduction reports measured-vs-extrapolated storage honestly,
and persists/loads partitions as segment files behind a manifest.

Disk layout (v2): ``<dir>/segments/g0-<seq>.rseg`` — one generation-0
segment per partition — plus ``<dir>/manifest.json``. The legacy v1
layout (zlib-JSON ``<source>/<day>/<column>.col`` files behind a
list-shaped manifest) is still read transparently by :meth:`
ColumnStore.load`; ``repro store migrate`` converts it in place. For
big on-disk histories prefer :class:`repro.store.SegmentStore`, which
reads the same segments lazily (mmap, pruned by the manifest) instead
of materialising every partition up front.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    cast,
)

from repro.batch.batch import BatchBuilder, ObservationBatch
from repro.measurement.snapshot import (
    DomainObservation,
    MEASUREMENTS_PER_DOMAIN_DAY,
)
from repro.store import codecs as _codecs
from repro.store.errors import StorageError
from repro.store.manifest import (
    SegmentMeta,
    StoreManifest,
    load_manifest_payload,
    manifest_format,
)
from repro.store.segment import (
    SEGMENT_SUFFIX,
    SegmentReader,
    build_segment,
    write_segment_bytes,
)
from repro.store.stats import PartitionStats

__all__ = [
    "ColumnStore",
    "PartitionStats",
    "StorageError",
]

_COLUMNS = (
    "domain",
    "tld",
    "ns_names",
    "apex_addrs",
    "www_cnames",
    "www_addrs",
    "apex_addrs6",
    "www_addrs6",
    "asns",
)


def _encode_column(values: Sequence[Any]) -> bytes:
    """Legacy v1 column encoding: dictionary+RLE JSON head, deflated.

    Kept for the v1 read path, `save_legacy`, and migration tests; the
    live format is the binary page codec in :mod:`repro.store.codecs`.
    """
    dictionary: Dict[str, int] = {}
    runs: List[List[int]] = []
    for value in values:
        key = json.dumps(value, sort_keys=True, separators=(",", ":"))
        index = dictionary.setdefault(key, len(dictionary))
        if runs and runs[-1][0] == index:
            runs[-1][1] += 1
        else:
            runs.append([index, 1])
    payload = json.dumps(
        {"dict": list(dictionary), "runs": runs}, separators=(",", ":")
    ).encode("utf-8")
    return zlib.compress(payload, level=6)


def _decode_column(blob: bytes) -> List[Any]:
    payload = json.loads(zlib.decompress(blob))
    dictionary = [json.loads(key) for key in payload["dict"]]
    values: List[Any] = []
    for index, count in payload["runs"]:
        values.extend([dictionary[index]] * count)
    return values


class ColumnStore:
    """In-memory columnar partitions of observations."""

    def __init__(self) -> None:
        self._partitions: Dict[Tuple[str, int], Dict[str, List[Any]]] = {}
        self._encoded: Dict[Tuple[str, int], Dict[str, bytes]] = {}
        self._segments: Dict[Tuple[str, int], bytes] = {}
        #: (source, day, reason) for partitions dropped by a lenient load.
        self.skipped_partitions: List[Tuple[str, int, str]] = []

    # -- writing ------------------------------------------------------------

    def append(
        self, source: str, day: int, observations: Sequence[DomainObservation]
    ) -> None:
        """Write a day's observations into the (source, day) partition."""
        partition = self._partitions.setdefault(
            (source, day), {column: [] for column in _COLUMNS}
        )
        self._invalidate(source, day)
        for observation in observations:
            partition["domain"].append(observation.domain)
            partition["tld"].append(observation.tld)
            partition["ns_names"].append(list(observation.ns_names))
            partition["apex_addrs"].append(list(observation.apex_addrs))
            partition["www_cnames"].append(list(observation.www_cnames))
            partition["www_addrs"].append(list(observation.www_addrs))
            partition["apex_addrs6"].append(list(observation.apex_addrs6))
            partition["www_addrs6"].append(list(observation.www_addrs6))
            partition["asns"].append(sorted(observation.asns))

    def append_batch(
        self, source: str, day: int, batch: ObservationBatch
    ) -> None:
        """Write a batch into the (source, day) partition.

        Value-identical to ``append(source, day, batch.rows())`` — the
        stored column lists, and therefore the encoded partition bytes
        backing Table 1's size accounting, come out the same — without
        boxing a row view per observation.
        """
        partition = self._partitions.setdefault(
            (source, day), {column: [] for column in _COLUMNS}
        )
        self._invalidate(source, day)
        names = batch.names
        addresses = batch.addresses
        for index in range(len(batch)):
            partition["domain"].append(names.value(batch.domains[index]))
            partition["tld"].append(names.value(batch.tlds[index]))
            partition["ns_names"].append(
                list(names.values(batch.ns_names[index]))
            )
            partition["apex_addrs"].append(
                list(addresses.texts(batch.apex_addrs[index]))
            )
            partition["www_cnames"].append(
                list(names.values(batch.www_cnames[index]))
            )
            partition["www_addrs"].append(
                list(addresses.texts(batch.www_addrs[index]))
            )
            partition["apex_addrs6"].append(
                list(addresses.texts(batch.apex_addrs6[index]))
            )
            partition["www_addrs6"].append(
                list(addresses.texts(batch.www_addrs6[index]))
            )
            partition["asns"].append(list(batch.asns[index]))

    def _invalidate(self, source: str, day: int) -> None:
        self._encoded.pop((source, day), None)
        self._segments.pop((source, day), None)

    # -- reading --------------------------------------------------------------

    def partitions(self) -> List[Tuple[str, int]]:
        return sorted(self._partitions)

    def partition_columns(self, source: str, day: int) -> Dict[str, List[Any]]:
        """One partition's raw column lists (the storage shape)."""
        partition = self._partitions.get((source, day))
        if partition is None:
            raise KeyError((source, day))
        return partition

    def rows(self, source: str, day: int) -> Iterator[DomainObservation]:
        """Re-materialise the observations of one partition."""
        partition = self._partitions.get((source, day))
        if partition is None:
            return
        for index in range(len(partition["domain"])):
            # The row-shaped compatibility path; bulk consumers use
            # batches() instead.
            yield DomainObservation(  # repro: ignore[row-boxing-in-hot-path]
                day=day,
                domain=partition["domain"][index],
                tld=partition["tld"][index],
                ns_names=tuple(partition["ns_names"][index]),
                apex_addrs=tuple(partition["apex_addrs"][index]),
                www_cnames=tuple(partition["www_cnames"][index]),
                www_addrs=tuple(partition["www_addrs"][index]),
                apex_addrs6=tuple(partition["apex_addrs6"][index]),
                www_addrs6=tuple(partition["www_addrs6"][index]),
                asns=frozenset(partition["asns"][index]),
            )

    def row_count(self, source: str, day: int) -> int:
        partition = self._partitions.get((source, day))
        return len(partition["domain"]) if partition else 0

    def batch(
        self,
        source: str,
        day: int,
        builder: Optional[BatchBuilder] = None,
    ) -> ObservationBatch:
        """One partition as a columnar batch — the bulk counterpart of
        :meth:`rows`, interning straight from the stored columns with no
        per-row :class:`DomainObservation` boxing. Pass a shared
        *builder* to intern many partitions into one pool pair.
        """
        out = (
            builder if builder is not None else BatchBuilder()
        ).new_batch()
        partition = self._partitions.get((source, day))
        if partition is None:
            return out
        names = out.names
        addresses = out.addresses
        domains = partition["domain"]
        tlds = partition["tld"]
        ns_names = partition["ns_names"]
        apex_addrs = partition["apex_addrs"]
        www_cnames = partition["www_cnames"]
        www_addrs = partition["www_addrs"]
        apex_addrs6 = partition["apex_addrs6"]
        www_addrs6 = partition["www_addrs6"]
        asns = partition["asns"]
        for index in range(len(domains)):
            out.append_ids(
                day=day,
                domain=names.intern(domains[index]),
                tld=names.intern(tlds[index]),
                ns_names=names.intern_tuple(ns_names[index]),
                www_cnames=names.intern_tuple(www_cnames[index]),
                apex_addrs=addresses.intern_tuple(apex_addrs[index]),
                www_addrs=addresses.intern_tuple(www_addrs[index]),
                apex_addrs6=addresses.intern_tuple(apex_addrs6[index]),
                www_addrs6=addresses.intern_tuple(www_addrs6[index]),
                # append() stores sorted(asns), so the stored column is
                # already in canonical tuple form.
                asns=tuple(asns[index]),
            )
        return out

    def batches(
        self, builder: Optional[BatchBuilder] = None
    ) -> Iterator[Tuple[str, int, ObservationBatch]]:
        """Every partition as ``(source, day, batch)``, in sorted
        partition order, sharing one pool pair across all yields."""
        shared = builder if builder is not None else BatchBuilder()
        for source, day in self.partitions():
            yield source, day, self.batch(source, day, builder=shared)

    # -- encoding and statistics --------------------------------------------------

    def encode_partition(self, source: str, day: int) -> Dict[str, bytes]:
        """Columnar-encode one partition (cached).

        Each column's blob is its v2 page — codec id byte followed by
        the page bytes — a deterministic function of the column values.
        """
        key = (source, day)
        encoded = self._encoded.get(key)
        if encoded is None:
            partition = self._partitions[key]
            encoded = {}
            for column, values in sorted(partition.items()):
                codec, page = _codecs.encode_column(
                    _codecs.COLUMN_KINDS[column], values
                )
                encoded[column] = bytes([codec]) + page
            self._encoded[key] = encoded
        return encoded

    def decode_partition(
        self, source: str, day: int
    ) -> Dict[str, List[Any]]:
        """Round-trip check helper: decode an encoded partition."""
        decoded = {}
        for column, blob in sorted(self.encode_partition(source, day).items()):
            decoded[column] = _codecs.decode_column(
                _codecs.COLUMN_KINDS[column], blob[0], blob[1:]
            )
        return decoded

    def segment_bytes(self, source: str, day: int) -> bytes:
        """The partition as one standalone v2 segment (cached) — the
        exact bytes :meth:`save` lands on disk for it."""
        key = (source, day)
        data = self._segments.get(key)
        if data is None:
            data = build_segment([(source, day, self._partitions[key])])
            self._segments[key] = data
        return data

    def partition_stats(self, source: str, day: int) -> PartitionStats:
        rows = self.row_count(source, day)
        return PartitionStats(
            source=source,
            day=day,
            rows=rows,
            data_points=rows * MEASUREMENTS_PER_DOMAIN_DAY,
            encoded_bytes=len(self.segment_bytes(source, day)),
        )

    # -- disk persistence ---------------------------------------------------

    def save(self, directory: str) -> List[str]:
        """Write every partition as a v2 segment plus a manifest.

        Layout: ``<dir>/segments/g0-<seq>.rseg`` — one generation-0
        segment per partition, in sorted partition order — and
        ``<dir>/manifest.json``. Returns the file paths written.
        """
        written: List[str] = []
        manifest = StoreManifest()
        for sequence, (source, day) in enumerate(self.partitions()):
            relative = os.path.join(
                "segments", f"g0-{sequence:06d}{SEGMENT_SUFFIX}"
            )
            path = os.path.join(directory, relative)
            data = self.segment_bytes(source, day)
            write_segment_bytes(path, data)
            written.append(path)
            manifest.segments.append(
                SegmentMeta.describe(
                    file=relative,
                    generation=0,
                    size=len(data),
                    partitions=[(source, day, self.row_count(source, day))],
                )
            )
        os.makedirs(directory, exist_ok=True)
        written.append(manifest.save(directory))
        return written

    def save_legacy(self, directory: str) -> List[str]:
        """Write the deprecated v1 layout (zlib-JSON column files).

        Kept so migration and dual-format loading stay testable against
        real v1 stores; new code should use :meth:`save`.
        """
        written: List[str] = []
        manifest: List[Dict[str, object]] = []
        for source, day in self.partitions():
            partition_dir = os.path.join(directory, source, str(day))
            os.makedirs(partition_dir, exist_ok=True)
            encoded = {
                column: _encode_column(values)
                for column, values in sorted(
                    self._partitions[(source, day)].items()
                )
            }
            for column, blob in sorted(encoded.items()):
                path = os.path.join(partition_dir, f"{column}.col")
                with open(path, "wb") as handle:
                    handle.write(blob)
                written.append(path)
            manifest.append(
                {
                    "source": source,
                    "day": day,
                    "rows": self.row_count(source, day),
                    "columns": sorted(encoded),
                    "checksums": {
                        column: zlib.crc32(encoded[column])
                        for column in sorted(encoded)
                    },
                }
            )
        manifest_path = os.path.join(directory, "manifest.json")
        os.makedirs(directory, exist_ok=True)
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle, indent=1)
        written.append(manifest_path)
        return written

    @classmethod
    def load(cls, directory: str, on_error: str = "raise") -> "ColumnStore":
        """Rebuild a store from :meth:`save` (or legacy v1) output.

        Both manifest formats load transparently: v2 segment stores are
        read through the checked segment reader, v1 stores through the
        legacy zlib-JSON decoder with its manifest CRC-32 checks. A
        damaged partition raises :class:`StorageError`, or — with
        ``on_error="skip"`` — is dropped whole and recorded in
        :attr:`skipped_partitions`, so one rotten day costs one day of
        data, not the run.
        """
        if on_error not in ("raise", "skip"):
            raise ValueError("on_error must be 'raise' or 'skip'")
        payload = load_manifest_payload(directory)
        if manifest_format(payload) == 1:
            return cls._load_v1(directory, payload, on_error)
        manifest = StoreManifest.from_dict(cast(Dict[str, Any], payload))
        store = cls()
        for meta in manifest.segments:
            store._load_segment(directory, meta, on_error)
        return store

    def _load_segment(
        self, directory: str, meta: SegmentMeta, on_error: str
    ) -> None:
        """Eagerly read and verify one v2 segment into partitions."""
        path = os.path.join(directory, meta.file)
        try:
            reader = SegmentReader(path)
        except StorageError as exc:
            if on_error == "raise":
                raise
            for source, day, _rows in meta.partitions:
                self.skipped_partitions.append((source, day, str(exc)))
            return
        declared = {
            (source, day): rows for source, day, rows in meta.partitions
        }
        with reader:
            for ref in reader.partitions:
                try:
                    expected = declared.get((ref.source, ref.day))
                    if expected is not None and expected != ref.rows:
                        raise StorageError(
                            f"row count mismatch in {path}: "
                            f"{ref.rows} != {expected}"
                        )
                    columns = {
                        column: reader.column_cells(ref, column)
                        for column in _COLUMNS
                    }
                except StorageError as exc:
                    if on_error == "raise":
                        raise
                    self.skipped_partitions.append(
                        (ref.source, ref.day, str(exc))
                    )
                    continue
                partition = self._partitions.setdefault(
                    (ref.source, ref.day),
                    {column: [] for column in _COLUMNS},
                )
                for column in _COLUMNS:
                    partition[column].extend(columns[column])

    @classmethod
    def _load_v1(
        cls, directory: str, manifest: List[Any], on_error: str
    ) -> "ColumnStore":
        store = cls()
        for entry in manifest:
            source = cast(str, entry["source"])
            day = int(cast(int, entry["day"]))
            try:
                columns = cls._load_v1_partition(directory, entry)
            except (StorageError, OSError) as exc:
                if on_error == "raise":
                    raise
                store.skipped_partitions.append((source, day, str(exc)))
                continue
            store._partitions[(source, day)] = {
                column: columns.get(column, []) for column in _COLUMNS
            }
        return store

    @staticmethod
    def _load_v1_partition(
        directory: str, entry: Dict[str, object]
    ) -> Dict[str, List[Any]]:
        """Read and verify one legacy manifest entry's column files."""
        source = str(entry["source"])
        day = int(cast(int, entry["day"]))
        partition_dir = os.path.join(directory, source, str(day))
        checksums = cast(
            Dict[str, int], entry.get("checksums", {})
        )
        rows = cast(Optional[int], entry.get("rows"))
        columns: Dict[str, List[Any]] = {}
        for column in cast(List[str], entry["columns"]):
            path = os.path.join(partition_dir, f"{column}.col")
            try:
                with open(path, "rb") as handle:
                    blob = handle.read()
            except OSError as exc:
                raise StorageError(
                    f"missing segment file {path}: {exc}"
                ) from exc
            expected = checksums.get(column)
            if expected is not None and zlib.crc32(blob) != expected:
                raise StorageError(f"checksum mismatch in {path}")
            try:
                values = _decode_column(blob)
            except (zlib.error, ValueError, KeyError, IndexError,
                    TypeError) as exc:
                raise StorageError(
                    f"cannot decode segment {path}: {exc}"
                ) from exc
            if rows is not None and len(values) != rows:
                raise StorageError(
                    f"row count mismatch in {path}: "
                    f"{len(values)} != {rows}"
                )
            columns[column] = values
        return columns

    def total_stats(self, source: Optional[str] = None) -> PartitionStats:
        """Aggregate stats over all (or one source's) partitions."""
        rows = 0
        data_points = 0
        encoded_bytes = 0
        days: Set[int] = set()
        for key in self._partitions:
            if source is not None and key[0] != source:
                continue
            stats = self.partition_stats(*key)
            rows += stats.rows
            data_points += stats.data_points
            encoded_bytes += stats.encoded_bytes
            days.add(key[1])
        return PartitionStats(
            source=source or "total",
            day=len(days),
            rows=rows,
            data_points=data_points,
            encoded_bytes=encoded_bytes,
        )
