"""Stage I: zone listings, the measurement's daily input.

The platform "downloads updated zone files daily from registry operators"
(§3.1). :class:`ZoneFeed` plays the registry side: it produces the list of
names present in a TLD zone on a given day, together with simple zone-file
statistics, and can render/parse the flat zone-listing text format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.world.world import World


@dataclass(frozen=True)
class ZoneListing:
    """One day's zone file for one TLD: just the SLD names."""

    tld: str
    day: int
    names: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.names)

    def to_text(self) -> str:
        """The flat registry dump: one name per line, sorted."""
        header = f"; zone {self.tld} day {self.day} names {len(self.names)}\n"
        return header + "\n".join(sorted(self.names)) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "ZoneListing":
        lines = text.splitlines()
        if not lines or not lines[0].startswith("; zone "):
            raise ValueError("missing zone listing header")
        fields = lines[0].split()
        tld, day = fields[2], int(fields[4])
        names = tuple(line for line in lines[1:] if line.strip())
        return cls(tld, day, names)


class ZoneFeed:
    """Produces daily zone listings from the simulated registries."""

    def __init__(self, world: World):
        self._world = world
        self.downloads = 0

    def listing(self, tld: str, day: int) -> ZoneListing:
        """Download the zone file for *tld* as of *day*."""
        start, days = self._world.tld_windows.get(tld, (0, self._world.horizon))
        if not start <= day < start + days:
            raise ValueError(
                f"no zone file for {tld} on day {day} "
                f"(window {start}..{start + days})"
            )
        names = tuple(self._world.zone_names(tld, day))
        self.downloads += 1
        return ZoneListing(tld=tld, day=day, names=names)

    def alexa_listing(self, day: int) -> ZoneListing:
        """The Alexa Top-1M style name list (a list, not a zone).

        Unlike TLD zones, the ranking churns daily: names enter and leave
        with popularity, so the union over the window is much larger than
        any single day's list (Table 1's 2.2M unique SLDs for a 1M list).
        """
        return ZoneListing(
            tld="alexa", day=day, names=tuple(self._world.alexa_list(day))
        )

    def sources(self) -> List[str]:
        """All measured sources: the TLD zones plus the Alexa list."""
        return sorted(self._world.tld_windows) + ["alexa"]
