"""Measurement quality accounting: coverage, dark domains, NS-SLD census.

§4.4.1 infers the Sedo incident was a DNS issue *at the third party*
because "the number of measured domains with a sedoparking.com NS SLD
also dipped that same day" — i.e. the platform tracks not just answers but
measurement coverage. This module provides that view: per-day coverage
(how many zone names produced usable answers), dark-domain counts, and a
census of domains per NS SLD whose day-over-day dips flag infrastructure
incidents rather than protection changes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.measurement.snapshot import DomainObservation


@dataclass(frozen=True)
class CoverageReport:
    """One day's measurement coverage for one source."""

    source: str
    day: int
    zone_names: int
    measured: int
    dark: int

    @property
    def coverage(self) -> float:
        """Fraction of zone names that yielded usable records."""
        if not self.zone_names:
            return 1.0
        return (self.measured - self.dark) / self.zone_names


def coverage_of(
    source: str,
    day: int,
    zone_names: int,
    observations: Sequence[DomainObservation],
) -> CoverageReport:
    """Build a coverage report from one day's observations."""
    dark = sum(1 for observation in observations if observation.is_dark())
    return CoverageReport(
        source=source,
        day=day,
        zone_names=zone_names,
        measured=len(observations),
        dark=dark,
    )


def ns_sld_census(
    observations: Sequence[DomainObservation],
) -> Dict[str, int]:
    """Domains measured per NS SLD (the paper's Sedo-dip signal)."""
    census: Counter = Counter()
    for observation in observations:
        for sld in observation.ns_slds():
            census[sld] += 1
    return dict(census)


@dataclass
class IncidentDetector:
    """Flags days on which an NS SLD's measured population collapses.

    A *protection* change keeps the NS SLD visible (the domains still
    resolve, just elsewhere); an *infrastructure incident* makes the
    domains unmeasurable, so the SLD's census count collapses. The
    detector keeps a census history and reports collapses beyond
    ``drop_fraction``.
    """

    drop_fraction: float = 0.5
    min_population: int = 5
    _history: List[Tuple[int, Dict[str, int]]] = field(default_factory=list)

    def observe_day(
        self, day: int, observations: Sequence[DomainObservation]
    ) -> List[Tuple[str, int, int]]:
        """Ingest a day; return ``(sld, before, after)`` incident rows."""
        census = ns_sld_census(observations)
        incidents: List[Tuple[str, int, int]] = []
        if self._history:
            _, previous = self._history[-1]
            for sld, before in previous.items():
                if before < self.min_population:
                    continue
                after = census.get(sld, 0)
                if after < before * (1.0 - self.drop_fraction):
                    incidents.append((sld, before, after))
        self._history.append((day, census))
        return incidents

    @property
    def days_observed(self) -> int:
        return len(self._history)

    def census_series(self, sld: str) -> List[Tuple[int, int]]:
        """The (day, count) history of one NS SLD."""
        return [
            (day, census.get(sld, 0)) for day, census in self._history
        ]
