"""Stage II: measurement workers that observe domains.

Two implementations of the same observation contract:

* :class:`FastProber` reads the world's piecewise-constant state directly.
  It also emits run-length-compressed :class:`ObservationSegment` streams,
  which make 550-day sweeps over 10⁵ domains cheap.
* :class:`WireProber` performs *real* iterative DNS resolution — wire
  encoding, referrals from the root, cross-zone CNAME chasing — against the
  world's materialised zones for a day.

``tests/integration`` asserts byte-level agreement between the two on
sampled domains, which is what justifies using the fast path for bulk runs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.dnscore.name import DomainName
from repro.dnscore.resolver import IterativeResolver, ResolutionError, ResolverCache
from repro.dnscore.rrtypes import Rcode, RRType
from repro.measurement.snapshot import DomainObservation, ObservationSegment
from repro.world.domain import DnsConfig
from repro.world.world import World


def _observation_from_config(
    domain: str, tld: str, day: int, config: DnsConfig
) -> DomainObservation:
    return DomainObservation(
        day=day,
        domain=domain,
        tld=tld,
        ns_names=tuple(sorted(config.ns_names)),
        apex_addrs=tuple(sorted(config.apex_ips)),
        www_cnames=config.www_cnames,
        www_addrs=tuple(sorted(config.www_ips)),
        apex_addrs6=tuple(sorted(config.apex_ips6)),
        www_addrs6=tuple(sorted(config.www_ips6)),
    )


class FastProber:
    """Observes domains by reading the world's state directly."""

    def __init__(self, world: World):
        self._world = world
        self.observations_made = 0

    def observe(self, domain: str, day: int) -> Optional[DomainObservation]:
        """The observation for *domain* on *day* (None if not in zone)."""
        timeline = self._world.domains.get(domain)
        if timeline is None or not timeline.alive(day):
            return None
        self.observations_made += 1
        return _observation_from_config(
            domain, timeline.tld, day, timeline.config_at(day)
        )

    def observe_day(
        self, names: Iterable[str], day: int
    ) -> List[DomainObservation]:
        """Observe every name in *names* on *day* (a daily sweep shard)."""
        observations = []
        for name in names:
            observation = self.observe(name, day)
            if observation is not None:
                observations.append(observation)
        return observations

    def observe_segments(
        self, domain: str, horizon: Optional[int] = None
    ) -> List[ObservationSegment]:
        """The domain's full observation history, run-length compressed.

        Equivalent to calling :meth:`observe` for every day of the
        domain's life and merging equal consecutive rows — but O(changes)
        instead of O(days).
        """
        timeline = self._world.domains.get(domain)
        if timeline is None:
            return []
        horizon = self._world.horizon if horizon is None else horizon
        segments: List[ObservationSegment] = []
        for start, end, config in timeline.segments(horizon):
            observation = _observation_from_config(
                domain, timeline.tld, start, config
            )
            self.observations_made += 1
            segments.append(ObservationSegment(start, end, observation))
        return segments


class WireProber:
    """Observes domains via real resolution over the simulated network."""

    def __init__(self, world: World, loss_rate: float = 0.0, seed: int = 0):
        self._world = world
        self._loss_rate = loss_rate
        self._seed = seed
        self.queries_sent = 0
        #: Lookups that fell back to an empty answer after resolution
        #: failed outright — the wire path's visible degradation counter.
        self.degraded_lookups = 0

    def observe_day(
        self, names: Sequence[str], day: int
    ) -> List[DomainObservation]:
        """Materialise *day* once and measure every name through the wire."""
        network, roots = self._world.materialize_dns(
            day, names, loss_rate=self._loss_rate, seed=self._seed
        )
        resolver = IterativeResolver(network, roots, cache=ResolverCache())
        observations = []
        for name in names:
            timeline = self._world.domains.get(name)
            if timeline is None or not timeline.alive(day):
                continue
            observations.append(
                self._measure_one(resolver, name, timeline.tld, day)
            )
        return observations

    def observe(self, domain: str, day: int) -> Optional[DomainObservation]:
        rows = self.observe_day([domain], day)
        return rows[0] if rows else None

    def _measure_one(
        self,
        resolver: IterativeResolver,
        domain: str,
        tld: str,
        day: int,
    ) -> DomainObservation:
        apex = DomainName.from_text(domain)
        www = apex.prepend("www")

        apex_a = self._addresses(resolver, apex, RRType.A)
        apex_aaaa = self._addresses(resolver, apex, RRType.AAAA)
        www_a, www_chain = self._www(resolver, www, RRType.A)
        www_aaaa, _ = self._www(resolver, www, RRType.AAAA)
        ns_names = self._ns(resolver, apex)

        return DomainObservation(
            day=day,
            domain=domain,
            tld=tld,
            ns_names=tuple(sorted(ns_names)),
            apex_addrs=tuple(sorted(apex_a)),
            www_cnames=www_chain,
            www_addrs=tuple(sorted(www_a)),
            apex_addrs6=tuple(sorted(apex_aaaa)),
            www_addrs6=tuple(sorted(www_aaaa)),
        )

    def _addresses(
        self, resolver: IterativeResolver, name: DomainName, rrtype: RRType
    ) -> List[str]:
        try:
            result = resolver.resolve(name, rrtype)
        except ResolutionError:
            self.degraded_lookups += 1
            return []
        self.queries_sent += result.queries_sent
        if result.rcode != Rcode.NOERROR:
            return []
        return [r.rdata.to_text() for r in result.rrs(rrtype)]

    def _www(
        self, resolver: IterativeResolver, name: DomainName, rrtype: RRType
    ) -> Tuple[List[str], Tuple[str, ...]]:
        try:
            result = resolver.resolve(name, rrtype)
        except ResolutionError:
            self.degraded_lookups += 1
            return [], ()
        self.queries_sent += result.queries_sent
        if result.rcode != Rcode.NOERROR:
            return [], ()
        addresses = [r.rdata.to_text() for r in result.rrs(rrtype)]
        chain = tuple(t.to_text() for t in result.cname_chain)
        return addresses, chain

    def _ns(
        self, resolver: IterativeResolver, name: DomainName
    ) -> List[str]:
        try:
            result = resolver.resolve(name, RRType.NS)
        except ResolutionError:
            self.degraded_lookups += 1
            return []
        self.queries_sent += result.queries_sent
        if result.rcode != Rcode.NOERROR:
            return []
        return [
            r.rdata.nsdname.to_text()  # type: ignore[union-attr]
            for r in result.rrs(RRType.NS)
        ]
