"""The active DNS measurement platform (the paper's Figure 1, in-process).

Stage I  — :mod:`repro.measurement.zonefeed`: daily zone listings per TLD.
Stage II — :mod:`repro.measurement.scheduler` + :mod:`repro.measurement.prober`:
           a cluster manager shards the name list over measurement workers,
           each of which queries A/AAAA/NS for the apex and ``www`` label of
           every domain and stores full answer sections including CNAME
           expansions.
Stage III — :mod:`repro.measurement.storage`: results land in a columnar
           store; :mod:`repro.measurement.enrich` supplements every address
           with origin ASNs from the day's pfx2as snapshot.

Two probers implement the same observation contract: a fast prober that
reads world state directly (used for 550-day sweeps) and a wire prober that
performs real iterative resolution over the simulated network (used for
fidelity checks and spot measurements). Tests assert they agree.
"""

from repro.measurement.snapshot import (
    DomainObservation,
    MEASUREMENTS_PER_DOMAIN_DAY,
    ObservationSegment,
)
from repro.measurement.zonefeed import ZoneFeed, ZoneListing
from repro.measurement.prober import FastProber, WireProber
from repro.measurement.scheduler import ClusterManager, MeasurementRun
from repro.measurement.storage import ColumnStore, PartitionStats
from repro.measurement.enrich import AsnEnricher
from repro.measurement.quality import (
    CoverageReport,
    IncidentDetector,
    coverage_of,
    ns_sld_census,
)

__all__ = [
    "AsnEnricher",
    "ClusterManager",
    "ColumnStore",
    "CoverageReport",
    "DomainObservation",
    "FastProber",
    "IncidentDetector",
    "MEASUREMENTS_PER_DOMAIN_DAY",
    "MeasurementRun",
    "ObservationSegment",
    "PartitionStats",
    "WireProber",
    "ZoneFeed",
    "ZoneListing",
    "coverage_of",
    "ns_sld_census",
]
