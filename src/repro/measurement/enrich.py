"""Stage III: supplementing observations with origin AS numbers.

"We supplement each IP address with an autonomous system number on the
basis of BGP data. The origin AS of the most-specific prefix in which an
address was contained at measurement time is determined on the basis of
the Routeviews pfx2as data set. For multi-origin AS we add all the
involved AS numbers." (§3.2)

Daily enrichment asks the day's pfx2as snapshot for every address. For the
segment pipeline, :class:`AsnEnricher` also computes an *ASN timeline* per
address (cheap because only a handful of prefixes ever change origin:
the diversion episodes of §4.4) and splits observation segments where the
mapping changes.
"""

from __future__ import annotations

import ipaddress
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.batch.batch import ObservationBatch
from repro.measurement.snapshot import DomainObservation, ObservationSegment
from repro.routing.pfx2as import Pfx2As
from repro.routing.prefixtrie import IPAddress, PrefixTrie
from repro.world.world import World


class AsnEnricher:
    """Maps observed addresses to origin-AS sets, day-aware."""

    def __init__(self, world: World) -> None:
        self._world = world
        self._change_days = world.routing_change_days()
        #: Prefixes whose announcement ever changes after day 0.
        self._dynamic = PrefixTrie()
        for day, prefix, _ in world.routing_events():
            if day > 0:
                self._dynamic.insert(prefix, True)
        #: address → [(start_day, origins)] ascending, deduplicated.
        self._timeline_cache: Dict[str, List[Tuple[int, FrozenSet[int]]]] = {}
        #: address text → parsed form, so each unique address parses once.
        self._parsed: Dict[str, IPAddress] = {}
        #: (observation, origins) → the enriched observation (interning).
        self._interned: Dict[
            Tuple[DomainObservation, FrozenSet[int]], DomainObservation
        ] = {}
        self.lookups = 0
        self.intern_hits = 0

    def _parse(self, address: str) -> IPAddress:
        """The parsed form of *address*, parsed at most once per text."""
        parsed = self._parsed.get(address)
        if parsed is None:
            parsed = ipaddress.ip_address(address)
            self._parsed[address] = parsed
        return parsed

    def _intern(
        self, observation: DomainObservation, origins: FrozenSet[int]
    ) -> DomainObservation:
        """One shared enriched observation per (payload, origins) pair.

        Segment splitting re-enriches the same observation with the same
        origin set once per sub-interval; interning keeps a single object
        per distinct result instead of allocating a copy for every piece.
        """
        key = (observation, origins)
        interned = self._interned.get(key)
        if interned is None:
            interned = observation.with_asns(origins)
            self._interned[key] = interned
        else:
            self.intern_hits += 1
        return interned

    # -- daily enrichment -----------------------------------------------------

    def enrich(self, observation: DomainObservation) -> DomainObservation:
        """Attach the origin ASNs of every observed address."""
        pfx2as = self._world.pfx2as_at(observation.day)
        asns: Set[int] = set()
        for address in observation.all_addresses():
            self.lookups += 1
            asns |= pfx2as.lookup(self._parse(address))
        return observation.with_asns(frozenset(asns))

    def enrich_day(
        self, observations: Sequence[DomainObservation]
    ) -> List[DomainObservation]:
        return [self.enrich(observation) for observation in observations]

    def enrich_batch(self, batch: ObservationBatch) -> ObservationBatch:
        """The batch counterpart of :meth:`enrich_day`.

        Addresses parse once in the batch's pool and each distinct
        ``(day, address)`` pair hits the LPM trie once, however many
        rows share it (mass hosters give thousands of rows the same
        address). Row unions are memoised by the row's deduplicated
        address-id tuple, so identical rows cost one set union total.
        The returned sibling batch's rows equal ``enrich_day`` output
        value-for-value.
        """
        pool = batch.addresses
        pfx2as_by_day: Dict[int, Pfx2As] = {}
        origins_by_address: Dict[Tuple[int, int], FrozenSet[int]] = {}
        union_memo: Dict[
            Tuple[int, Tuple[int, ...]], Tuple[int, ...]
        ] = {}
        asns_column: List[Tuple[int, ...]] = []
        for index in range(len(batch)):
            day = batch.days[index]
            address_ids = batch.row_address_ids(index)
            key = (day, address_ids)
            merged = union_memo.get(key)
            if merged is None:
                pfx2as = pfx2as_by_day.get(day)
                if pfx2as is None:
                    pfx2as = self._world.pfx2as_at(day)
                    pfx2as_by_day[day] = pfx2as
                combined: Set[int] = set()
                for address_id in address_ids:
                    origins = origins_by_address.get((day, address_id))
                    if origins is None:
                        self.lookups += 1
                        origins = pfx2as.lookup(pool.parsed(address_id))
                        origins_by_address[(day, address_id)] = origins
                    combined |= origins
                merged = tuple(sorted(combined))
                union_memo[key] = merged
            asns_column.append(merged)
        return batch.with_asns(asns_column)

    # -- segment enrichment ------------------------------------------------------

    def address_timeline(
        self, address: str
    ) -> List[Tuple[int, FrozenSet[int]]]:
        """``[(start_day, origins), ...]`` for *address*, compressed.

        Addresses outside every dynamic prefix get a single entry; others
        are evaluated at each routing change day.
        """
        cached = self._timeline_cache.get(address)
        if cached is not None:
            return cached
        self.lookups += 1
        parsed = self._parse(address)
        if self._dynamic.longest_match(parsed) is None:
            timeline = [(0, self._world.pfx2as_at(0).lookup(parsed))]
        else:
            timeline = []
            previous: FrozenSet[int] = frozenset({-1})  # sentinel
            for day in [0] + [d for d in self._change_days if d > 0]:
                origins = self._world.pfx2as_at(day).lookup(parsed)
                if origins != previous:
                    timeline.append((day, origins))
                    previous = origins
        self._timeline_cache[address] = timeline
        return timeline

    def asns_over(
        self, addresses: Sequence[str], start: int, end: int
    ) -> List[Tuple[int, int, FrozenSet[int]]]:
        """The combined origin set of *addresses* over ``[start, end)``.

        Returns ``(sub_start, sub_end, origins)`` pieces covering the whole
        interval, split wherever any address's mapping changes.
        """
        boundaries = {start, end}
        timelines = [self.address_timeline(address) for address in addresses]
        for timeline in timelines:
            for day, _ in timeline:
                if start < day < end:
                    boundaries.add(day)
        ordered = sorted(boundaries)
        pieces: List[Tuple[int, int, FrozenSet[int]]] = []
        for sub_start, sub_end in zip(ordered, ordered[1:]):
            origins: Set[int] = set()
            for timeline in timelines:
                current: FrozenSet[int] = frozenset()
                for day, value in timeline:
                    if day <= sub_start:
                        current = value
                    else:
                        break
                origins |= current
            pieces.append((sub_start, sub_end, frozenset(origins)))
        return pieces

    def enrich_segments(
        self, segments: Sequence[ObservationSegment]
    ) -> List[ObservationSegment]:
        """Attach ASNs to segments, splitting at mapping changes."""
        enriched: List[ObservationSegment] = []
        for segment in segments:
            addresses = segment.observation.all_addresses()
            if not addresses:
                enriched.append(segment)
                continue
            for sub_start, sub_end, origins in self.asns_over(
                addresses, segment.start, segment.end
            ):
                enriched.append(
                    ObservationSegment(
                        sub_start,
                        sub_end,
                        self._intern(segment.observation, origins),
                    )
                )
        return enriched
