"""Stage II scheduling: the per-TLD cluster manager and its worker cloud.

The real platform splits each TLD's name list over a cloud of measurement
workers (Figure 1). :class:`ClusterManager` reproduces the structure:
deterministic sharding, per-shard workers, per-day collection — so the data
flow (listing → shards → observations → enrichment → storage) matches the
paper's, even though the workers here run in one process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.measurement.enrich import AsnEnricher
from repro.measurement.prober import FastProber
from repro.measurement.snapshot import DomainObservation
from repro.measurement.storage import ColumnStore
from repro.measurement.zonefeed import ZoneFeed
from repro.world.world import World


def shard(names: Sequence[str], shard_count: int) -> List[List[str]]:
    """Split *names* into *shard_count* contiguous, balanced shards."""
    if shard_count < 1:
        raise ValueError("shard_count must be positive")
    size, remainder = divmod(len(names), shard_count)
    shards: List[List[str]] = []
    cursor = 0
    for index in range(shard_count):
        extent = size + (1 if index < remainder else 0)
        shards.append(list(names[cursor : cursor + extent]))
        cursor += extent
    return shards


@dataclass
class MeasurementRun:
    """Bookkeeping for one day × source measurement round."""

    source: str
    day: int
    shards: int
    observations: int


class ClusterManager:
    """Drives daily measurement rounds for one or more sources."""

    def __init__(
        self,
        world: World,
        store: Optional[ColumnStore] = None,
        shard_count: int = 8,
        enrich: bool = True,
    ):
        self._world = world
        self._feed = ZoneFeed(world)
        self._prober = FastProber(world)
        self._enricher = AsnEnricher(world) if enrich else None
        self.store = store if store is not None else ColumnStore()
        self._shard_count = shard_count
        self.runs: List[MeasurementRun] = []

    @property
    def feed(self) -> ZoneFeed:
        return self._feed

    def measure_day(self, source: str, day: int) -> List[DomainObservation]:
        """Measure every name of *source* on *day* and store the rows."""
        if source == "alexa":
            listing = self._feed.alexa_listing(day)
        else:
            listing = self._feed.listing(source, day)
        observations: List[DomainObservation] = []
        shards = shard(listing.names, self._shard_count)
        for worker_names in shards:
            observations.extend(self._prober.observe_day(worker_names, day))
        if self._enricher is not None:
            observations = self._enricher.enrich_day(observations)
        self.store.append(source, day, observations)
        self.runs.append(
            MeasurementRun(
                source=source,
                day=day,
                shards=len(shards),
                observations=len(observations),
            )
        )
        return observations

    def measure_range(
        self, source: str, start: int, days: int
    ) -> Iterator[List[DomainObservation]]:
        """Daily rounds over ``[start, start+days)`` for *source*."""
        for day in range(start, start + days):
            yield self.measure_day(source, day)
