"""Stage II scheduling: the per-TLD cluster manager and its worker cloud.

The real platform splits each TLD's name list over a cloud of measurement
workers (Figure 1). :class:`ClusterManager` reproduces the structure:
deterministic sharding, per-shard workers, per-day collection — so the data
flow (listing → shards → observations → enrichment → storage) matches the
paper's, even though the workers here run in one process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.batch.batch import BatchBuilder, BatchRows, ObservationBatch
from repro.measurement.enrich import AsnEnricher
from repro.measurement.prober import FastProber
from repro.measurement.snapshot import DomainObservation
from repro.measurement.storage import ColumnStore
from repro.measurement.zonefeed import ZoneFeed
from repro.world.timeline import CCTLD_START_DAY
from repro.world.world import World

#: Landing order of the measured sources within one calendar day.
ALL_SOURCES = ("com", "net", "org", "nl", "alexa")


def shard(names: Sequence[str], shard_count: int) -> List[List[str]]:
    """Split *names* into *shard_count* contiguous, balanced shards."""
    if shard_count < 1:
        raise ValueError("shard_count must be positive")
    size, remainder = divmod(len(names), shard_count)
    shards: List[List[str]] = []
    cursor = 0
    for index in range(shard_count):
        extent = size + (1 if index < remainder else 0)
        shards.append(list(names[cursor : cursor + extent]))
        cursor += extent
    return shards


@dataclass
class MeasurementRun:
    """Bookkeeping for one day × source measurement round."""

    source: str
    day: int
    shards: int
    observations: int


class ClusterManager:
    """Drives daily measurement rounds for one or more sources."""

    def __init__(
        self,
        world: World,
        store: Optional[ColumnStore] = None,
        shard_count: int = 8,
        enrich: bool = True,
    ):
        self._world = world
        self._feed = ZoneFeed(world)
        self._prober = FastProber(world)
        self._enricher = AsnEnricher(world) if enrich else None
        self.store = store if store is not None else ColumnStore()
        self._shard_count = shard_count
        #: One pool pair for every batch this manager lands — domains
        #: repeat daily, so interning compounds across rounds.
        self._builder = BatchBuilder()
        self.runs: List[MeasurementRun] = []

    @property
    def feed(self) -> ZoneFeed:
        return self._feed

    def measure_day(self, source: str, day: int) -> List[DomainObservation]:
        """Measure every name of *source* on *day* and store the rows."""
        if source == "alexa":
            listing = self._feed.alexa_listing(day)
        else:
            listing = self._feed.listing(source, day)
        probed: List[DomainObservation] = []
        shards = shard(listing.names, self._shard_count)
        for worker_names in shards:
            probed.extend(self._prober.observe_day(worker_names, day))
        batch = self._builder.build(probed)
        if self._enricher is not None:
            batch = self._enricher.enrich_batch(batch)
        self.store.append_batch(source, day, batch)
        self.runs.append(
            MeasurementRun(
                source=source,
                day=day,
                shards=len(shards),
                observations=len(batch),
            )
        )
        return batch.rows()

    def measure_range(
        self, source: str, start: int, days: int
    ) -> Iterator[List[DomainObservation]]:
        """Daily rounds over ``[start, start+days)`` for *source*."""
        for day in range(start, start + days):
            yield self.measure_day(source, day)


@dataclass
class DayPartition:
    """One landed ``(source, day)`` observation partition.

    What the incremental ingest engine consumes: the enriched observation
    rows of one source on one day, plus the day's listing size (the zone or
    ranking can be larger than the measured rows on a real platform, so the
    size travels with the partition rather than being re-derived).
    """

    source: str
    day: int
    zone_size: int
    observations: Sequence[DomainObservation]
    #: The columnar form of ``observations``, when the partition was
    #: produced batch-first (excluded from equality: two partitions with
    #: equal rows are equal whether or not one carries columns).
    batch: Optional[ObservationBatch] = field(
        default=None, compare=False, repr=False
    )

    def __len__(self) -> int:
        return len(self.observations)

    @classmethod
    def from_batch(
        cls,
        source: str,
        day: int,
        zone_size: int,
        batch: ObservationBatch,
    ) -> "DayPartition":
        """A partition whose rows are lazy views over *batch*."""
        return cls(
            source=source,
            day=day,
            zone_size=zone_size,
            observations=BatchRows(batch),
            batch=batch,
        )


class PartitionFeed:
    """Per-``(source, day)`` partitions in landing order.

    The OpenINTEL-style platform lands one partition per source per day;
    this iterator reproduces that cadence over the simulated world:
    day-major, sources in :data:`ALL_SOURCES` order, each source only
    within its measurement window. Unlike :class:`ClusterManager` it does
    not retain what it measured (the engine owns the state); pass *store*
    to additionally land every partition in a :class:`ColumnStore`.
    """

    def __init__(
        self,
        world: World,
        sources: Optional[Sequence[str]] = None,
        enrich: bool = True,
        store: Optional[ColumnStore] = None,
        shard_count: int = 8,
    ):
        self._world = world
        self._feed = ZoneFeed(world)
        self._prober = FastProber(world)
        self._enricher = AsnEnricher(world) if enrich else None
        self._store = store
        self._shard_count = shard_count
        self._builder = BatchBuilder()
        self.sources = tuple(sources) if sources else ALL_SOURCES
        unknown = set(self.sources) - set(ALL_SOURCES)
        if unknown:
            raise ValueError(f"unknown sources: {sorted(unknown)}")

    def window(self, source: str) -> Tuple[int, int]:
        """``[start, end)`` measurement window of *source*."""
        if source == "alexa":
            return (CCTLD_START_DAY, self._world.horizon)
        start, days = self._world.tld_windows.get(
            source, (0, self._world.horizon)
        )
        return (start, start + days)

    def windows(self) -> Dict[str, Tuple[int, int]]:
        return {source: self.window(source) for source in self.sources}

    def partition(self, source: str, day: int) -> DayPartition:
        """Measure one ``(source, day)`` partition through the cluster."""
        if source == "alexa":
            listing = self._feed.alexa_listing(day)
        else:
            listing = self._feed.listing(source, day)
        probed: List[DomainObservation] = []
        for worker_names in shard(listing.names, self._shard_count):
            probed.extend(self._prober.observe_day(worker_names, day))
        batch = self._builder.build(probed)
        if self._enricher is not None:
            batch = self._enricher.enrich_batch(batch)
        if self._store is not None:
            self._store.append_batch(source, day, batch)
        return DayPartition.from_batch(
            source=source,
            day=day,
            zone_size=len(listing),
            batch=batch,
        )

    def days(
        self, start: Optional[int] = None, end: Optional[int] = None
    ) -> Iterator[DayPartition]:
        """Partitions for every day in ``[start, end)``, landing order."""
        windows = self.windows()
        if start is None:
            start = min(window[0] for window in windows.values())
        if end is None:
            end = max(window[1] for window in windows.values())
        for day in range(start, end):
            for source in self.sources:
                window_start, window_end = windows[source]
                if window_start <= day < window_end:
                    yield self.partition(source, day)
