"""On-disk incremental cache for the interprocedural analyzer.

Two levels, both content-addressed:

* **per-module records** — the parsed facts of one file (symbol table,
  flow summaries, local findings, suppressions), keyed by the SHA-256
  of the file's bytes plus the analysis version and the directory
  profile it was analyzed under. A record never goes stale in place: a
  changed file hashes to a different key, so invalidation is automatic
  and exact.
* **a project record** — the fully-merged findings of one analysis
  run, keyed by a fingerprint over *every* module's ``(key, sha,
  profile)`` triple. On an unchanged tree the warm path is: hash the
  files, hit the project record, skip parsing, dataflow, and the
  interprocedural fixpoint entirely. This is what makes warm runs ≥5×
  faster than cold (asserted in ``benchmarks/bench_analysis.py``).

Cross-module correctness falls out of the fingerprint: the
interprocedural rules see the whole call graph, so their output is a
function of *all* module records — one changed file misses the project
record and re-runs the (cheap, in-memory) fixpoint over mostly-cached
module records, which is exactly the invalidation the call graph
demands.

Writes are atomic (``os.replace`` of a same-directory temp file) so a
crashed or parallel run can never leave a torn pickle behind; loads
treat any unreadable entry as a miss.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

#: Bump when record layout or rule semantics change: every key
#: embeds it, so stale caches die wholesale instead of half-applying.
ANALYSIS_VERSION = "2026.08-interproc-1"

#: Default cache directory name (git-ignored), created on first write.
DEFAULT_CACHE_DIR = ".repro-analysis-cache"


def source_sha(data: bytes) -> str:
    """Content hash of one file's bytes."""
    return hashlib.sha256(data).hexdigest()


def project_fingerprint(
    triples: Sequence[Tuple[str, str, str]]
) -> str:
    """Fingerprint of the whole tree: every (module, sha, profile)."""
    digest = hashlib.sha256(ANALYSIS_VERSION.encode("utf-8"))
    for module, sha, profile in sorted(triples):
        digest.update(f"{module}\x00{sha}\x00{profile}\x01".encode("utf-8"))
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one analysis run."""

    module_hits: int = 0
    module_misses: int = 0
    project_hit: bool = False
    extra: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "module_hits": self.module_hits,
            "module_misses": self.module_misses,
            "project_hit": self.project_hit,
        }


class AnalysisCache:
    """Content-addressed pickle store under one directory."""

    def __init__(self, directory: str = DEFAULT_CACHE_DIR) -> None:
        self.directory = directory
        self.stats = CacheStats()

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    # -- keys --------------------------------------------------------------

    def module_key(self, module: str, sha: str, profile: str) -> str:
        digest = hashlib.sha256(
            f"{ANALYSIS_VERSION}\x00{module}\x00{sha}\x00{profile}".encode(
                "utf-8"
            )
        ).hexdigest()
        return digest

    def _module_path(self, key: str) -> str:
        return os.path.join(self.directory, "modules", key[:2], key + ".pkl")

    def _project_path(self, fingerprint: str) -> str:
        return os.path.join(
            self.directory, "project", fingerprint + ".pkl"
        )

    # -- low-level store ---------------------------------------------------

    def _load(self, path: str) -> Optional[Any]:
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None

    def _store(self, path: str, value: Any) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            dir=directory, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, path)
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass

    # -- module records ----------------------------------------------------

    def load_module(
        self, module: str, sha: str, profile: str
    ) -> Optional[Any]:
        record = self._load(
            self._module_path(self.module_key(module, sha, profile))
        )
        if record is None:
            self.stats.module_misses += 1
        else:
            self.stats.module_hits += 1
        return record

    def store_module(
        self, module: str, sha: str, profile: str, record: Any
    ) -> None:
        self._store(
            self._module_path(self.module_key(module, sha, profile)),
            record,
        )

    # -- project record ----------------------------------------------------

    def load_project(self, fingerprint: str) -> Optional[Any]:
        record = self._load(self._project_path(fingerprint))
        self.stats.project_hit = record is not None
        return record

    def store_project(self, fingerprint: str, record: Any) -> None:
        self._store(self._project_path(fingerprint), record)
