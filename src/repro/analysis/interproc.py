"""The interprocedural rule family (call-graph + dataflow powered).

These rules see the *project*, not a file: a symbol table and call
graph (``repro/analysis/callgraph.py``) plus per-function flow
summaries (``repro/analysis/dataflow.py``). Each encodes a failure
mode that is invisible to any single-file pass:

``canonicalization-taint``
    Unsorted dict/set iteration whose value flows — through returns,
    arguments, and container stores — into a serialization sink
    (``json.dumps``, ``canonical_json``, the wire/checkpoint codecs,
    discovered transitively). This replaces the *serialization-
    adjacent* heuristic of ``unsorted-iteration`` with real
    reachability: the unsorted list built three calls above the
    encoder is caught at its source.

``async-blocking``
    A blocking call (``time.sleep``, socket ops, file I/O,
    ``subprocess``) reachable from an ``async def`` in ``repro.serve``
    without an executor hop. One blocked coroutine stalls every
    connection on the loop — the self-protecting query service would
    DoS itself. Functions dispatched via ``run_in_executor`` /
    ``asyncio.to_thread`` are passed as references, never called, so
    the hop is exempt by construction.

``snapshot-mutation``
    The serve plane's correctness rests on *immutable* snapshot
    indexes swapped atomically: writes to a published ``*Index``
    object outside its own methods, or to the swapper's published
    slot outside the designated publish points, would hand readers a
    torn day.

``fork-unsafe-capture``
    Objects holding locks, sockets, or open file handles must not
    cross the fork boundary into ``ShardedExecutor.map_shards`` /
    ``ParallelBackend.map_shards`` arguments: a forked lock can
    deadlock the pool, a forked descriptor interleaves writes.
    Classes become fork-unsafe transitively (a class holding a
    fork-unsafe class is itself fork-unsafe).

``exception-flow``
    Typed errors raised on worker paths must survive the trip back
    through the process pool: a custom multi-parameter ``__init__``
    without a pool-safe ``__reduce__`` unpickles into a ``TypeError``
    that *masks the real failure*. And typed faults caught on worker
    paths must be accounted (FaultLog/quarantine/retry) before being
    swallowed, or degraded runs stop being auditable.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.analysis.callgraph import (
    CallGraph,
    CallSite,
    ClassSymbol,
    FunctionSymbol,
)
from repro.analysis.dataflow import FlowSummary, TaintEngine
from repro.analysis.findings import Finding


class ProjectModel:
    """Everything a project rule can see."""

    def __init__(
        self,
        graph: CallGraph,
        flows: Mapping[str, FlowSummary],
        paths: Mapping[str, str],
    ) -> None:
        self.graph = graph
        self.flows = dict(flows)
        #: module key → real filesystem path (for findings)
        self.paths = dict(paths)

    def path_of(self, module: str) -> str:
        return self.paths.get(module, module)


class ProjectRule:
    """One interprocedural check over a :class:`ProjectModel`."""

    id: str = ""
    summary: str = ""

    def check_project(self, project: ProjectModel) -> List[Finding]:
        raise NotImplementedError

    def _finding(
        self,
        project: ProjectModel,
        module: str,
        line: int,
        column: int,
        message: str,
    ) -> Finding:
        return Finding(
            path=project.path_of(module),
            line=line,
            column=column + 1,
            rule=self.id,
            message=message,
        )


class CanonicalizationTaintRule(ProjectRule):
    id = "canonicalization-taint"
    summary = (
        "unsorted dict/set iteration whose value reaches a "
        "serialization sink (interprocedural)"
    )

    def check_project(self, project: ProjectModel) -> List[Finding]:
        engine = TaintEngine(project.graph, project.flows)
        findings: List[Finding] = []
        for taint in engine.run():
            findings.append(
                self._finding(
                    project,
                    taint.module,
                    taint.line,
                    taint.column,
                    f"iteration order of {taint.text} flows into "
                    f"serialization sink {taint.sink}; wrap the "
                    f"iteration in sorted(...) or canonicalize before "
                    f"serializing",
                )
            )
        return findings


#: Dotted external calls that block the event loop.
BLOCKING_CALLS: FrozenSet[str] = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "socket.gethostbyaddr",
        "subprocess.run",
        "subprocess.Popen",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.system",
        "os.popen",
        "os.waitpid",
        "urllib.request.urlopen",
        "open",
        "input",
    }
)

#: Method names that block on sockets/paths regardless of receiver.
BLOCKING_METHODS: FrozenSet[str] = frozenset(
    {
        ".recv", ".recv_into", ".recvfrom", ".accept", ".sendall",
        ".makefile", ".read_text", ".write_text", ".read_bytes",
        ".write_bytes",
    }
)

#: Packages whose async defs must never block the loop.
ASYNC_PACKAGES: Tuple[str, ...] = ("repro/serve/",)


class AsyncBlockingRule(ProjectRule):
    id = "async-blocking"
    summary = (
        "blocking call reachable from an async def in repro.serve "
        "without an executor hop"
    )

    def _blocking_symbol(self, site: CallSite) -> Optional[str]:
        if site.symbol in BLOCKING_CALLS:
            return site.symbol
        if site.symbol.startswith("."):
            return site.symbol if site.symbol in BLOCKING_METHODS else None
        tail = "." + site.symbol.rpartition(".")[2]
        if tail in BLOCKING_METHODS:
            return site.symbol
        return None

    def check_project(self, project: ProjectModel) -> List[Finding]:
        graph = project.graph
        # Functions that block directly, with the blocking symbol.
        blocking: Dict[str, str] = {}
        for qualname in sorted(graph.functions):
            function = graph.functions[qualname]
            for site in function.calls:
                symbol = self._blocking_symbol(site)
                if symbol is not None:
                    blocking[qualname] = f"{symbol}()"
                    break
        # Propagate along call edges (callee blocking → caller
        # blocking), recording the chain for the message.
        changed = True
        while changed:
            changed = False
            for caller in sorted(graph.edges):
                if caller in blocking:
                    continue
                for callee in sorted(graph.edges[caller]):
                    if callee in blocking:
                        witness = blocking[callee]
                        short = callee.rsplit(".", 1)[-1]
                        if witness.count(" <- ") < 4:
                            witness = f"{witness} <- {short}()"
                        blocking[caller] = witness
                        changed = True
                        break
        findings: List[Finding] = []
        for qualname in sorted(graph.functions):
            function = graph.functions[qualname]
            if not function.is_async:
                continue
            if not function.module.startswith(ASYNC_PACKAGES):
                continue
            if qualname not in blocking:
                continue
            # Anchor at the first call site that starts a blocking
            # chain (direct or through a project callee).
            site_line, site_col = function.line, function.column
            detail = blocking[qualname]
            for site in function.calls:
                symbol = self._blocking_symbol(site)
                if symbol is not None:
                    site_line, site_col = site.line, site.column
                    break
                target = graph.resolved.get(qualname, {}).get(
                    (site.line, site.column)
                )
                if (
                    target is not None
                    and target.kind == "project"
                    and target.name in blocking
                ):
                    site_line, site_col = site.line, site.column
                    break
            findings.append(
                self._finding(
                    project,
                    function.module,
                    site_line,
                    site_col,
                    f"async def {function.name!r} reaches blocking "
                    f"{detail}; one blocked coroutine stalls every "
                    f"connection — hop through "
                    f"loop.run_in_executor/asyncio.to_thread instead",
                )
            )
        return findings


#: Methods allowed to write the swapper's published slot / build an
#: index.  Everything else mutating published state is a torn read
#: waiting to happen.
PUBLISH_METHODS: FrozenSet[str] = frozenset(
    {"__init__", "rebuild", "publish", "build"}
)


class SnapshotMutationRule(ProjectRule):
    id = "snapshot-mutation"
    summary = (
        "mutation of published snapshot/index state outside the "
        "designated publish point"
    )

    SERVE_PACKAGE = "repro/serve/"

    def check_project(self, project: ProjectModel) -> List[Finding]:
        graph = project.graph
        findings: List[Finding] = []
        # Swapper classes: anything in repro.serve exposing
        # ``current_index``; the slot it returns is the published ref.
        slots: Dict[str, Set[str]] = {}
        index_classes: Set[str] = set()
        for qualname in sorted(graph.classes):
            cls = graph.classes[qualname]
            if not cls.module.startswith(self.SERVE_PACKAGE):
                continue
            if cls.name.endswith("Index"):
                index_classes.add(qualname)
            if "current_index" in cls.methods:
                slot = self._published_slot(cls, project)
                if slot is not None:
                    slots[qualname] = {slot}
        for qualname in sorted(slots):
            cls = graph.classes[qualname]
            for method_name in sorted(cls.methods):
                if method_name in PUBLISH_METHODS:
                    continue
                method = cls.methods[method_name]
                for write in method.attr_writes:
                    if write.base == "self" and write.attr in (
                        slots[qualname]
                    ):
                        findings.append(
                            self._finding(
                                project,
                                cls.module,
                                write.line,
                                write.column,
                                f"{cls.name}.{method_name} writes the "
                                f"published snapshot slot "
                                f"{write.attr!r} outside the publish "
                                f"point ({'/'.join(sorted(PUBLISH_METHODS))}); "
                                f"readers could observe a torn index",
                            )
                        )
        # Writes to a *published* index object from outside its class.
        for fqual in sorted(graph.functions):
            function = graph.functions[fqual]
            for write in function.attr_writes:
                if write.base in ("self", "cls"):
                    continue
                declared = function.var_types.get(write.base)
                if declared is None or declared not in index_classes:
                    continue
                cls = graph.classes[declared]
                if function.class_name == cls.name and (
                    function.module == cls.module
                ):
                    continue
                findings.append(
                    self._finding(
                        project,
                        function.module,
                        write.line,
                        write.column,
                        f"mutation of {cls.name}.{write.attr} outside "
                        f"{cls.name}'s own methods; snapshot indexes "
                        f"are immutable once published — build a new "
                        f"index and swap it atomically",
                    )
                )
        return findings

    def _published_slot(
        self, cls: ClassSymbol, project: ProjectModel
    ) -> Optional[str]:
        """The ``self.<attr>`` slot the swapper publishes through."""
        del project
        for candidate in ("_index", "index", "_current", "current"):
            if candidate in cls.attr_types or any(
                write.attr == candidate
                for writes in cls.attr_assigns.values()
                for write in writes
            ):
                return candidate
        return None


#: External factories whose products must not cross a fork boundary.
FORK_UNSAFE_FACTORIES: FrozenSet[str] = frozenset(
    {
        "threading.Lock", "threading.RLock", "threading.Condition",
        "threading.Event", "threading.Semaphore",
        "threading.BoundedSemaphore", "threading.Thread",
        "socket.socket", "socket.create_connection",
        "socket.create_server", "open", "io.open", "subprocess.Popen",
        "multiprocessing.Lock", "multiprocessing.Queue",
    }
)

#: Map entry points that ship their arguments across fork().
FORK_ENTRY_METHODS: FrozenSet[str] = frozenset({"map_shards"})


class ForkUnsafeCaptureRule(ProjectRule):
    id = "fork-unsafe-capture"
    summary = (
        "object holding a socket/lock/open handle passed into a "
        "fork-boundary map call"
    )

    def _unsafe_classes(self, graph: CallGraph) -> Dict[str, str]:
        """class qualname → the attr chain that makes it fork-unsafe."""
        unsafe: Dict[str, str] = {}
        changed = True
        while changed:
            changed = False
            for qualname in sorted(graph.classes):
                if qualname in unsafe:
                    continue
                cls = graph.classes[qualname]
                for attr in sorted(cls.attr_types):
                    declared = cls.attr_types[attr]
                    if declared in FORK_UNSAFE_FACTORIES:
                        unsafe[qualname] = f"{attr}: {declared}"
                        changed = True
                        break
                    if declared in unsafe:
                        unsafe[qualname] = (
                            f"{attr}: {declared.rsplit('.', 1)[-1]} "
                            f"({unsafe[declared]})"
                        )
                        changed = True
                        break
        return unsafe

    def _symbol_type(
        self,
        graph: CallGraph,
        function: FunctionSymbol,
        symbol: str,
    ) -> Optional[str]:
        """Declared type of an argument symbol in *function*'s scope."""
        head, _, rest = symbol.partition(".")
        if head in ("self", "cls") and function.class_name is not None:
            table = graph.modules.get(function.module)
            cls = (
                table.classes.get(function.class_name)
                if table is not None else None
            )
            if cls is not None and rest and "." not in rest:
                return graph.attr_type(cls, rest)
            if cls is not None and not rest:
                return cls.qualname
            return None
        if rest:
            return None
        return function.var_types.get(head)

    def check_project(self, project: ProjectModel) -> List[Finding]:
        graph = project.graph
        unsafe = self._unsafe_classes(graph)
        findings: List[Finding] = []
        for fqual in sorted(graph.functions):
            function = graph.functions[fqual]
            for site in function.calls:
                tail = site.symbol.rpartition(".")[2]
                if tail not in FORK_ENTRY_METHODS:
                    continue
                for symbol in site.arg_symbols:
                    declared = self._symbol_type(graph, function, symbol)
                    if declared is None:
                        continue
                    reason: Optional[str] = None
                    if declared in unsafe:
                        reason = unsafe[declared]
                    elif declared in FORK_UNSAFE_FACTORIES:
                        reason = declared
                    if reason is not None:
                        findings.append(
                            self._finding(
                                project,
                                function.module,
                                site.line,
                                site.column,
                                f"argument {symbol!r} of type "
                                f"{declared.rsplit('.', 1)[-1]} crosses "
                                f"the fork boundary into {tail}() while "
                                f"holding {reason}; forked "
                                f"locks/sockets/handles deadlock or "
                                f"interleave — pass plain data and "
                                f"rebuild handles in the worker",
                            )
                        )
        return findings


#: Packages whose raises may cross a process pool.
WORKER_PACKAGES: Tuple[str, ...] = (
    "repro/parallel/",
    "repro/mapreduce/",
    "repro/faults/",
    "repro/stream/",
)

#: Handler body calls that count as fault accounting.
ACCOUNTING_MARKERS: Tuple[str, ...] = (
    "record", "quarantine", "fault", "log", "absorb", "retry", "mark",
    "skip", "warn",
)


class ExceptionFlowRule(ProjectRule):
    id = "exception-flow"
    summary = (
        "worker-path typed error without pool-safe __reduce__, or a "
        "typed fault swallowed before FaultLog accounting"
    )

    def _needs_reduce(
        self, graph: CallGraph, cls: ClassSymbol
    ) -> Optional[str]:
        """Why *cls* needs ``__reduce__``, or None when it is safe."""
        if not graph.is_exception_class(cls):
            return None
        init = graph.lookup_method(cls, "__init__")
        if init is None or len(init.params) <= 1:
            return None
        if graph.lookup_method(cls, "__reduce__") is not None:
            return None
        return (
            f"__init__ takes ({', '.join(init.params)}) but pickling "
            f"replays the constructor with args alone"
        )

    def check_project(self, project: ProjectModel) -> List[Finding]:
        graph = project.graph
        findings: List[Finding] = []
        for fqual in sorted(graph.functions):
            function = graph.functions[fqual]
            if not function.module.startswith(WORKER_PACKAGES):
                continue
            table = graph.modules.get(function.module)
            if table is None:
                continue
            for raise_site in function.raises:
                cls = self._resolve_class(graph, table, raise_site.symbol)
                if cls is None:
                    continue
                reason = self._needs_reduce(graph, cls)
                if reason is not None:
                    findings.append(
                        self._finding(
                            project,
                            function.module,
                            raise_site.line,
                            raise_site.column,
                            f"{cls.name} raised on a worker path "
                            f"without a pool-safe __reduce__: {reason}; "
                            f"the unpickle TypeError would mask the "
                            f"real failure",
                        )
                    )
            for handler in function.handlers:
                if handler.has_raise:
                    continue
                caught_fault = False
                for symbol in handler.type_symbols:
                    cls = self._resolve_class(graph, table, symbol)
                    if cls is not None and (
                        cls.name == "FaultError"
                        or graph.derives_from(cls, "FaultError")
                    ):
                        caught_fault = True
                        break
                if not caught_fault:
                    continue
                accounted = any(
                    marker in call.lower()
                    for call in handler.call_symbols
                    for marker in ACCOUNTING_MARKERS
                )
                if not accounted:
                    findings.append(
                        self._finding(
                            project,
                            function.module,
                            handler.line,
                            handler.column,
                            "typed fault swallowed without FaultLog "
                            "accounting; record, quarantine, or retry "
                            "before continuing so degraded runs stay "
                            "auditable",
                        )
                    )
        return findings

    def _resolve_class(
        self,
        graph: CallGraph,
        table: "object",
        symbol: str,
    ) -> Optional[ClassSymbol]:
        from repro.analysis.callgraph import ModuleSymbols, _resolve_raw

        assert isinstance(table, ModuleSymbols)
        if symbol.startswith(".") or symbol.startswith(("self.", "cls.")):
            return None
        dotted = _resolve_raw(
            symbol,
            table.imports,
            table.dotted,
            set(table.functions) | set(table.classes),
        )
        return graph.classes.get(dotted)


def project_rules() -> Tuple[ProjectRule, ...]:
    """All interprocedural rules, in reporting order."""
    return (
        CanonicalizationTaintRule(),
        AsyncBlockingRule(),
        SnapshotMutationRule(),
        ForkUnsafeCaptureRule(),
        ExceptionFlowRule(),
    )


def project_rule_ids() -> List[str]:
    return [rule.id for rule in project_rules()]
