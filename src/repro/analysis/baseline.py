"""Suppression baseline: sanctioned legacy findings, with reasons.

The analyzer gate is *ratcheting*: new findings fail CI immediately,
while pre-existing ones burn down through a checked-in baseline file
(``analysis-baseline.json``). Every entry must carry a written
justification — an entry without one is a configuration error, not a
suppression — so each sanctioned finding is an auditable decision, not
a silent `# noqa`.

Entries match findings by ``(rule, path, message)``, deliberately
*without* the line number: unrelated edits that shift a sanctioned
finding up or down the file must not resurrect it, while any change to
the finding itself (different message, moved file) surfaces it again.
Entries that no longer match anything are reported as *stale* so the
baseline shrinks as debt is paid, never just accretes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.findings import Finding

BASELINE_VERSION = 1

#: Placeholder written by ``--write-baseline``; load() rejects it so a
#: human must replace it before the entry counts as sanctioned.
JUSTIFICATION_PLACEHOLDER = "TODO: justify this finding"


class BaselineError(ValueError):
    """The baseline file is malformed or missing justifications."""


@dataclass(frozen=True)
class BaselineEntry:
    """One sanctioned finding."""

    rule: str
    path: str
    message: str
    justification: str

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path.replace("\\", "/"), self.message)


@dataclass
class BaselineMatch:
    """What applying a baseline to a set of findings produced."""

    new_findings: List[Finding]
    suppressed: List[Finding]
    stale_entries: List[BaselineEntry]


def _finding_key(finding: Finding) -> Tuple[str, str, str]:
    return (
        finding.rule,
        finding.path.replace("\\", "/"),
        finding.message,
    )


class Baseline:
    """A set of sanctioned findings loaded from disk (or empty)."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries = tuple(entries)
        self._by_key: Dict[Tuple[str, str, str], BaselineEntry] = {
            entry.key(): entry for entry in self.entries
        }

    def apply(self, findings: Sequence[Finding]) -> BaselineMatch:
        new_findings: List[Finding] = []
        suppressed: List[Finding] = []
        matched: set = set()
        for finding in findings:
            key = _finding_key(finding)
            if key in self._by_key:
                matched.add(key)
                suppressed.append(finding)
            else:
                new_findings.append(finding)
        stale = [
            entry for entry in self.entries if entry.key() not in matched
        ]
        return BaselineMatch(
            new_findings=new_findings,
            suppressed=suppressed,
            stale_entries=stale,
        )


def load_baseline(path: str) -> Baseline:
    """Load and validate a baseline file.

    Raises :class:`BaselineError` on malformed documents and on any
    entry whose justification is missing, empty, or still the
    ``--write-baseline`` placeholder.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except json.JSONDecodeError as error:
        raise BaselineError(f"{path}: invalid JSON: {error}") from error
    if not isinstance(document, dict) or "entries" not in document:
        raise BaselineError(
            f"{path}: expected an object with an 'entries' list"
        )
    entries: List[BaselineEntry] = []
    for index, raw in enumerate(document["entries"]):
        if not isinstance(raw, dict):
            raise BaselineError(f"{path}: entry {index} is not an object")
        missing = [
            field for field in ("rule", "path", "message", "justification")
            if not isinstance(raw.get(field), str)
        ]
        if missing:
            raise BaselineError(
                f"{path}: entry {index} is missing {', '.join(missing)}"
            )
        justification = raw["justification"].strip()
        if not justification or justification == JUSTIFICATION_PLACEHOLDER:
            raise BaselineError(
                f"{path}: entry {index} ({raw['rule']} at {raw['path']}) "
                f"has no written justification; every baselined finding "
                f"must explain why it is sanctioned"
            )
        entries.append(
            BaselineEntry(
                rule=raw["rule"],
                path=raw["path"],
                message=raw["message"],
                justification=justification,
            )
        )
    return Baseline(entries)


def render_baseline(findings: Sequence[Finding]) -> str:
    """A baseline document covering *findings*, pending justification."""
    seen: set = set()
    entries: List[Dict[str, str]] = []
    for finding in sorted(findings):
        key = _finding_key(finding)
        if key in seen:
            continue
        seen.add(key)
        entries.append(
            {
                "rule": finding.rule,
                "path": finding.path.replace("\\", "/"),
                "message": finding.message,
                "justification": JUSTIFICATION_PLACEHOLDER,
            }
        )
    return json.dumps(
        {"version": BASELINE_VERSION, "entries": entries},
        indent=2,
        sort_keys=True,
    ) + "\n"


def write_baseline(findings: Sequence[Finding], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_baseline(findings))
