"""Running rules over files and trees.

The runner maps real filesystem paths to *logical module paths* —
``repro/...``-relative forward-slash paths like ``repro/stream/state.py``
— which is what rules scope on. That keeps scoping independent of where
the checkout lives (``src/repro/...``, an installed site-packages, or a
test fixture passing an explicit override).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, is_suppressed, suppressed_rules
from repro.analysis.rules import Rule, default_rules

#: Rule id used for files that fail to parse.
PARSE_ERROR = "parse-error"


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: Tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.findings

    def merge(self, other: "AnalysisResult") -> None:
        self.findings.extend(other.findings)
        self.files_checked += other.files_checked

    def finalize(self) -> "AnalysisResult":
        self.findings.sort()
        return self


def logical_module(path: str) -> str:
    """The ``repro/...`` logical path for *path*.

    The last ``repro`` component anchors the logical path; files outside
    any ``repro`` package fall back to their basename, which matches no
    scoped rule (unscoped rules still run).
    """
    parts = os.path.normpath(path).split(os.sep)
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return parts[-1]


class Analyzer:
    """Applies a set of rules to sources, files, and directory trees."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        self.rules: Tuple[Rule, ...] = tuple(
            default_rules() if rules is None else rules
        )

    def analyze_source(
        self,
        source: str,
        path: str,
        module: Optional[str] = None,
    ) -> AnalysisResult:
        """Analyze Python *source*, reporting findings against *path*.

        *module* overrides the logical module path derived from *path*;
        tests use this to place fixture code on scoped paths like
        ``repro/stream/fixture.py``.
        """
        if module is None:
            module = logical_module(path)
        result = AnalysisResult(
            files_checked=1,
            rules_run=tuple(rule.id for rule in self.rules),
        )
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            result.findings.append(
                Finding(
                    path=path,
                    line=error.lineno or 1,
                    column=(error.offset or 0) or 1,
                    rule=PARSE_ERROR,
                    message=f"could not parse file: {error.msg}",
                )
            )
            return result.finalize()
        suppressions = suppressed_rules(source)
        for rule in self.rules:
            if not rule.applies_to(module):
                continue
            for finding in rule.check(tree, module, path):
                if not is_suppressed(finding, suppressions):
                    result.findings.append(finding)
        return result.finalize()

    def analyze_file(self, path: str) -> AnalysisResult:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return self.analyze_source(source, path)

    def analyze_paths(self, paths: Iterable[str]) -> AnalysisResult:
        """Analyze files and (recursively) directories of ``.py`` files."""
        total = AnalysisResult(
            rules_run=tuple(rule.id for rule in self.rules)
        )
        for path in paths:
            for file_path in _python_files(path):
                total.merge(self.analyze_file(file_path))
        return total.finalize()


def _python_files(path: str) -> List[str]:
    if os.path.isfile(path):
        return [path]
    if not os.path.isdir(path):
        raise FileNotFoundError(f"no such file or directory: {path!r}")
    collected: List[str] = []
    for root, directories, files in os.walk(path):
        directories.sort()
        directories[:] = [
            name for name in directories
            if name not in ("__pycache__", ".git")
        ]
        for name in sorted(files):
            if name.endswith(".py"):
                collected.append(os.path.join(root, name))
    return collected
