"""SARIF 2.1.0 output for analyzer findings.

SARIF (Static Analysis Results Interchange Format) is what CI services
and editors ingest natively — GitHub code scanning, VS Code SARIF
viewers, and friends. One ``run`` with one ``tool.driver``; every rule
that ran is declared under ``driver.rules`` (so consumers can render
help text for rules with zero results), and every finding becomes a
``result`` with a physical location.

Output is deterministic: rules sort by id, results inherit the
canonical ``(path, line, column, rule)`` ordering of
:class:`repro.analysis.findings.Finding`, and the JSON is serialized
with sorted keys — the reporter holds itself to the same
canonical-ordering invariant the rules enforce.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Tuple

from repro.analysis.runner import AnalysisResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemas/sarif-schema-2.1.0.json"
)

TOOL_NAME = "repro-analyze"
TOOL_URI = "docs/ANALYSIS.md"


def _level_for(rule: str) -> str:
    return "error" if rule == "parse-error" else "warning"


def sarif_document(
    result: AnalysisResult,
    rule_descriptions: Sequence[Tuple[str, str]] = (),
) -> Dict[str, Any]:
    """The SARIF log as a plain dict (see :func:`render_sarif`)."""
    known = dict(rule_descriptions)
    for finding in result.findings:
        known.setdefault(finding.rule, "")
    for rule_id in result.rules_run:
        known.setdefault(rule_id, "")
    rules: List[Dict[str, Any]] = []
    for rule_id in sorted(known):
        descriptor: Dict[str, Any] = {"id": rule_id}
        if known[rule_id]:
            descriptor["shortDescription"] = {"text": known[rule_id]}
        descriptor["helpUri"] = TOOL_URI
        rules.append(descriptor)
    index_of = {rule["id"]: i for i, rule in enumerate(rules)}
    results: List[Dict[str, Any]] = []
    for finding in result.findings:
        results.append(
            {
                "ruleId": finding.rule,
                "ruleIndex": index_of[finding.rule],
                "level": _level_for(finding.rule),
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path.replace("\\", "/"),
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.column,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def render_sarif(
    result: AnalysisResult,
    rule_descriptions: Sequence[Tuple[str, str]] = (),
) -> str:
    """Serialize *result* as a SARIF 2.1.0 JSON string."""
    return json.dumps(
        sarif_document(result, rule_descriptions),
        indent=2,
        sort_keys=True,
    )
