"""Forward dataflow / taint framework over the project call graph.

The framework answers one repo-defining question interprocedurally:
*can a value whose content depends on unsorted dict/set iteration order
reach a serialization sink?* Byte-identity across the serial, parallel,
streamed, and served paths is the repo's core invariant; mapping order
is the classic way it silently breaks, and the breakage is usually
*non-local* — the unsorted list is built in one function and serialized
three calls later.

Per function, an intra-procedural pass collapses local variables into a
small flow graph over special nodes::

    param:<i>           taint entering through parameter i
    src:<k>             an order-taint source (unsorted .items()/.keys()/
                        .values() iteration or materialisation)
    call:<j>:arg:<i>    taint flowing into argument i of call j
    call:<j>:ret        the value call j returns
    ret                 the function's return value

Edges are syntactic value flow: assignments, container stores
(``out.append(v)``, ``out[k] = v``), comprehensions, returns.
``sorted(...)`` and order-insensitive consumers (``len``, ``sum``,
``min``, ``max``, ``set``, ``any``, ``all``...) sanitize. Scalar
accumulation (``total += v``) is deliberately not tracked — summing is
order-insensitive for the integer counters this repo accumulates, and
float-ordering error is the ``float-equality`` rule's territory.

The interprocedural engine then runs a fixpoint over per-function
summaries: which parameters reach a sink (directly, or through another
function's sink-reaching parameter), which parameters flow to the
return value, and whose return values are serialized by some caller.
External sinks seed the fixpoint (``json.dumps`` and friends); project
wrappers like ``canonical_json`` or the checkpoint codecs become sinks
*by discovery*, not by listing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.analysis.callgraph import CallGraph, ModuleSymbols, call_symbol

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: External callables whose arguments are serialized verbatim.
EXTERNAL_SINKS: FrozenSet[str] = frozenset(
    {
        "json.dumps", "json.dump", "pickle.dumps", "pickle.dump",
        "marshal.dumps", "marshal.dump",
    }
)

#: Calls that erase order-dependence from their result.
_SANITIZERS: FrozenSet[str] = frozenset({"sorted"})

#: Calls whose result does not depend on argument order.
_ORDER_INSENSITIVE: FrozenSet[str] = frozenset(
    {
        "len", "sum", "min", "max", "set", "frozenset", "any", "all",
        "bool", "isinstance", "abs", "round", "id", "hash", "repr",
        "print", "enumerate",
    }
)

#: Method calls that store their arguments into the receiver.
_CONTAINER_STORES: FrozenSet[str] = frozenset(
    {"append", "add", "extend", "update", "insert", "setdefault"}
)

#: Mapping-view methods whose iteration order is the dict's.
_VIEW_METHODS: FrozenSet[str] = frozenset({"items", "keys", "values"})


@dataclass(frozen=True)
class SourceSite:
    """One order-taint source inside a function."""

    id: int
    line: int
    column: int
    text: str


@dataclass(frozen=True)
class FlowCall:
    """One call participating in the flow graph."""

    id: int
    symbol: str
    line: int
    column: int
    arg_count: int


@dataclass
class FlowSummary:
    """The collapsed intra-procedural flow graph of one function."""

    sources: Tuple[SourceSite, ...] = ()
    calls: Tuple[FlowCall, ...] = ()
    edges: Tuple[Tuple[str, str], ...] = ()
    param_count: int = 0


class _FlowBuilder:
    """Builds a :class:`FlowSummary` for one function body.

    Statements are re-processed until the variable environment reaches a
    fixpoint (bounded), so flows through loop-carried variables are
    caught without a real worklist.
    """

    def __init__(self, node: _FunctionNode, params: Sequence[str]) -> None:
        self.node = node
        self.params = tuple(params)
        self.env: Dict[str, Set[str]] = {
            name: {f"param:{index}"}
            for index, name in enumerate(self.params)
        }
        self.edges: Set[Tuple[str, str]] = set()
        self.sources: Dict[Tuple[int, int], SourceSite] = {}
        self.calls: Dict[Tuple[int, int], FlowCall] = {}

    def build(self) -> FlowSummary:
        for _ in range(4):
            before = {name: set(values) for name, values in self.env.items()}
            for statement in self.node.body:
                self._statement(statement)
            if before == self.env:
                break
        return FlowSummary(
            sources=tuple(
                self.sources[key] for key in sorted(self.sources)
            ),
            calls=tuple(self.calls[key] for key in sorted(self.calls)),
            edges=tuple(sorted(self.edges)),
            param_count=len(self.params),
        )

    # -- helpers -----------------------------------------------------------

    def _merge(self, name: str, origins: Set[str]) -> None:
        if origins:
            self.env.setdefault(name, set()).update(origins)

    def _chain(self, node: ast.expr) -> Optional[str]:
        return call_symbol(node) if isinstance(
            node, (ast.Name, ast.Attribute)
        ) else None

    def _source_for(self, node: ast.Call) -> Optional[str]:
        """A ``src:k`` node when *node* is an unsorted mapping view."""
        function = node.func
        if not isinstance(function, ast.Attribute):
            return None
        if function.attr not in _VIEW_METHODS:
            return None
        if node.args or node.keywords:
            return None
        key = (node.lineno, node.col_offset)
        if key not in self.sources:
            receiver = ast.unparse(function.value)
            self.sources[key] = SourceSite(
                id=len(self.sources),
                line=node.lineno,
                column=node.col_offset,
                text=f"{receiver}.{function.attr}()",
            )
        return f"src:{self.sources[key].id}"

    def _call_node(self, node: ast.Call, symbol: str) -> FlowCall:
        key = (node.lineno, node.col_offset)
        if key not in self.calls:
            self.calls[key] = FlowCall(
                id=len(self.calls),
                symbol=symbol,
                line=node.lineno,
                column=node.col_offset,
                arg_count=len(node.args) + len(node.keywords),
            )
        return self.calls[key]

    # -- expressions -------------------------------------------------------

    def _eval(self, node: Optional[ast.expr]) -> Set[str]:
        if node is None:
            return set()
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            chain = self._chain(node if isinstance(node, ast.Attribute)
                                else node.value)
            origins: Set[str] = set()
            if chain is not None and chain in self.env:
                origins |= self.env[chain]
            base: ast.expr = node
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                if isinstance(base, ast.Subscript):
                    self._eval(base.slice)
                base = base.value
            origins |= self._eval(base)
            return origins
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, ast.BinOp):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.BoolOp):
            out: Set[str] = set()
            for value in node.values:
                out |= self._eval(value)
            return out
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return set()
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out = set()
            for element in node.elts:
                out |= self._eval(element)
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for key in node.keys:
                if key is not None:
                    out |= self._eval(key)
            for value in node.values:
                out |= self._eval(value)
            return out
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
        ):
            return self._eval_comprehension(node.generators, [node.elt])
        if isinstance(node, ast.DictComp):
            return self._eval_comprehension(
                node.generators, [node.key, node.value]
            )
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, ast.JoinedStr):
            out = set()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self._eval(value.value)
            return out
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            origins = self._eval(node.value)
            if isinstance(node.target, ast.Name):
                self._merge(node.target.id, origins)
            return origins
        return set()

    def _eval_call(self, node: ast.Call) -> Set[str]:
        source = self._source_for(node)
        if source is not None:
            # Still evaluate the receiver for side effects.
            return {source}
        symbol = call_symbol(node.func)
        arg_values: List[Set[str]] = []
        for argument in node.args:
            arg_values.append(self._eval(argument))
        for keyword in node.keywords:
            arg_values.append(self._eval(keyword.value))
        if symbol is None:
            out: Set[str] = set()
            self._eval(node.func)
            for value in arg_values:
                out |= value
            return out
        bare = symbol.rpartition(".")[2]
        if symbol in _SANITIZERS or symbol in _ORDER_INSENSITIVE:
            return set()
        receiver_chain: Optional[str] = None
        if isinstance(node.func, ast.Attribute):
            receiver_chain = self._chain(node.func.value)
        if bare in _CONTAINER_STORES and receiver_chain is not None:
            stored: Set[str] = set()
            for value in arg_values:
                stored |= value
            self._merge(receiver_chain, stored)
            self._merge(receiver_chain.partition(".")[0], stored)
            return set()
        call = self._call_node(node, symbol)
        for index, value in enumerate(arg_values):
            for origin in value:
                self.edges.add((origin, f"call:{call.id}:arg:{index}"))
        # The receiver of a method call feeds the call too (joining a
        # tainted list: ", ".join(parts) has parts as the receiver-arg).
        if receiver_chain is not None and receiver_chain in self.env:
            for origin in self.env[receiver_chain]:
                self.edges.add((origin, f"call:{call.id}:arg:0"))
        elif isinstance(node.func, ast.Attribute):
            for origin in self._eval(node.func.value):
                self.edges.add((origin, f"call:{call.id}:arg:0"))
        return {f"call:{call.id}:ret"}

    def _eval_comprehension(
        self,
        generators: Sequence[ast.comprehension],
        elements: Sequence[ast.expr],
    ) -> Set[str]:
        iter_origins: Set[str] = set()
        for generator in generators:
            origins = self._eval(generator.iter)
            iter_origins |= origins
            self._bind_target(generator.target, origins)
            for condition in generator.ifs:
                self._eval(condition)
        element_origins: Set[str] = set()
        for element in elements:
            element_origins |= self._eval(element)
        return iter_origins | element_origins

    # -- statements --------------------------------------------------------

    def _bind_target(self, target: ast.expr, origins: Set[str]) -> None:
        if isinstance(target, ast.Name):
            self._merge(target.id, origins)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, origins)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, origins)
        elif isinstance(target, ast.Attribute):
            chain = self._chain(target)
            if chain is not None:
                self._merge(chain, origins)
                self._merge(chain.partition(".")[0], origins)
        elif isinstance(target, ast.Subscript):
            base_chain = self._chain(target.value)
            if base_chain is not None:
                self._merge(base_chain, origins)
                self._merge(base_chain.partition(".")[0], origins)

    def _statement(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            origins = self._eval(node.value)
            for target in node.targets:
                self._bind_target(target, origins)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._bind_target(node.target, self._eval(node.value))
        elif isinstance(node, ast.AugAssign):
            # Scalar accumulation (``total += v``) stays untracked; a
            # sequence merge (``out += [..]`` / ``out += other``) where
            # the RHS is itself a container expression does flow.
            if isinstance(
                node.value,
                (ast.List, ast.Tuple, ast.ListComp, ast.Call, ast.BinOp),
            ):
                self._bind_target(node.target, self._eval(node.value))
            else:
                self._eval(node.value)
        elif isinstance(node, ast.Return):
            for origin in self._eval(node.value):
                self.edges.add((origin, "ret"))
        elif isinstance(node, ast.Expr):
            self._eval(node.value)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            origins = self._eval(node.iter)
            self._bind_target(node.target, origins)
            for statement in node.body + node.orelse:
                self._statement(statement)
        elif isinstance(node, ast.While):
            self._eval(node.test)
            for statement in node.body + node.orelse:
                self._statement(statement)
        elif isinstance(node, ast.If):
            self._eval(node.test)
            for statement in node.body + node.orelse:
                self._statement(statement)
        elif isinstance(node, ast.Try):
            for statement in node.body:
                self._statement(statement)
            for handler in node.handlers:
                for statement in handler.body:
                    self._statement(statement)
            for statement in node.orelse + node.finalbody:
                self._statement(statement)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                origins = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, origins)
            for statement in node.body:
                self._statement(statement)
        elif isinstance(node, ast.Raise):
            self._eval(node.exc)
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            pass
        # Nested defs/classes are separate symbols; skip them here.


def build_flow_summary(
    node: _FunctionNode, params: Sequence[str]
) -> FlowSummary:
    """The flow summary of one function (see module docstring)."""
    return _FlowBuilder(node, params).build()


def build_module_flows(
    tree: ast.Module, symbols: ModuleSymbols
) -> Dict[str, FlowSummary]:
    """Flow summaries for every function in *tree*, keyed by qualname."""
    flows: Dict[str, FlowSummary] = {}

    def visit(body: Sequence[ast.stmt], class_name: Optional[str]) -> None:
        for statement in body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if class_name is None:
                    symbol = symbols.functions.get(statement.name)
                else:
                    cls = symbols.classes.get(class_name)
                    symbol = (
                        cls.methods.get(statement.name)
                        if cls is not None else None
                    )
                if symbol is not None:
                    flows[symbol.qualname] = build_flow_summary(
                        statement, symbol.params
                    )
            elif isinstance(statement, ast.ClassDef):
                visit(statement.body, statement.name)

    visit(tree.body, None)
    return flows


@dataclass(frozen=True)
class TaintFinding:
    """One source whose order-taint reaches a serialization sink."""

    qualname: str
    module: str
    line: int
    column: int
    text: str
    sink: str


class TaintEngine:
    """The interprocedural fixpoint over flow summaries."""

    def __init__(
        self,
        graph: CallGraph,
        flows: Mapping[str, FlowSummary],
        external_sinks: FrozenSet[str] = EXTERNAL_SINKS,
    ) -> None:
        self.graph = graph
        self.flows = dict(flows)
        self.external_sinks = external_sinks
        #: qualname → param index → sink witness description
        self.sink_params: Dict[str, Dict[int, str]] = {}
        #: qualname → params flowing to the return value
        self.ret_params: Dict[str, Set[int]] = {}
        #: qualname → witness when the return value reaches a sink
        #: in some caller
        self.ret_sink: Dict[str, str] = {}

    # -- per-function graph evaluation -------------------------------------

    def _call_target(
        self, qualname: str, call: FlowCall
    ) -> Tuple[str, str]:
        """(kind, name) the flow call resolves to."""
        resolved = self.graph.resolved.get(qualname, {})
        target = resolved.get((call.line, call.column))
        if target is None:
            return ("external", call.symbol)
        if target.kind == "constructor":
            cls = self.graph.classes.get(target.name)
            if cls is not None:
                init = self.graph.lookup_method(cls, "__init__")
                if init is not None:
                    return ("constructor", init.qualname)
            return ("external", call.symbol)
        if target.kind == "project":
            return ("project", target.name)
        return ("external", target.name)

    def _evaluate(
        self, qualname: str
    ) -> Tuple[Dict[str, str], Set[str]]:
        """(nodes reaching a sink → witness, nodes reaching ``ret``)."""
        summary = self.flows[qualname]
        edges: List[Tuple[str, str]] = list(summary.edges)
        sink_marks: Dict[str, str] = {}
        for call in summary.calls:
            kind, name = self._call_target(qualname, call)
            if kind in ("project", "constructor"):
                marks = self.sink_params.get(name, {})
                passthrough = kind == "constructor"
                returns = self.ret_params.get(name, set())
                for index in range(call.arg_count):
                    arg = f"call:{call.id}:arg:{index}"
                    if index in marks:
                        sink_marks[arg] = marks[index]
                    if index in returns or passthrough:
                        edges.append((arg, f"call:{call.id}:ret"))
            else:
                if name in self.external_sinks:
                    for index in range(call.arg_count):
                        sink_marks[f"call:{call.id}:arg:{index}"] = name
                else:
                    for index in range(call.arg_count):
                        edges.append(
                            (
                                f"call:{call.id}:arg:{index}",
                                f"call:{call.id}:ret",
                            )
                        )
        forward: Dict[str, Set[str]] = {}
        for src, dst in edges:
            forward.setdefault(src, set()).add(dst)
        # Reverse reachability from sink-marked nodes, carrying the
        # nearest witness (deterministic: sorted worklist).
        reverse: Dict[str, Set[str]] = {}
        for src, dst in edges:
            reverse.setdefault(dst, set()).add(src)
        reaches_sink: Dict[str, str] = dict(sink_marks)
        queue = sorted(sink_marks)
        while queue:
            current = queue.pop(0)
            witness = reaches_sink[current]
            for parent in sorted(reverse.get(current, ())):
                if parent not in reaches_sink:
                    reaches_sink[parent] = witness
                    queue.append(parent)
        reaches_ret: Set[str] = {"ret"}
        queue = ["ret"]
        while queue:
            current = queue.pop(0)
            for parent in sorted(reverse.get(current, ())):
                if parent not in reaches_ret:
                    reaches_ret.add(parent)
                    queue.append(parent)
        return reaches_sink, reaches_ret

    @staticmethod
    def _short(qualname: str) -> str:
        parts = qualname.split(".")
        return ".".join(parts[-2:]) if len(parts) > 1 else qualname

    def _compose(self, witness: str, via: str) -> str:
        if witness.count(" via ") >= 3:
            return witness
        return f"{witness} via {self._short(via)}()"

    # -- fixpoint ----------------------------------------------------------

    def run(self) -> List[TaintFinding]:
        names = sorted(self.flows)
        for _ in range(24):
            changed = False
            for qualname in names:
                summary = self.flows[qualname]
                reaches_sink, reaches_ret = self._evaluate(qualname)
                marks = self.sink_params.setdefault(qualname, {})
                returns = self.ret_params.setdefault(qualname, set())
                for index in range(summary.param_count):
                    node = f"param:{index}"
                    if node in reaches_sink and index not in marks:
                        marks[index] = self._compose(
                            reaches_sink[node], qualname
                        )
                        changed = True
                    if node in reaches_ret and index not in returns:
                        returns.add(index)
                        changed = True
                # A callee's return value serialized here makes that
                # callee's returns sink-bound.
                for call in summary.calls:
                    kind, name = self._call_target(qualname, call)
                    if kind not in ("project", "constructor"):
                        continue
                    ret_node = f"call:{call.id}:ret"
                    witness: Optional[str] = None
                    if ret_node in reaches_sink:
                        witness = reaches_sink[ret_node]
                    elif ret_node in reaches_ret and qualname in (
                        self.ret_sink
                    ):
                        witness = self.ret_sink[qualname]
                    if witness is not None and name not in self.ret_sink:
                        self.ret_sink[name] = self._compose(
                            witness, qualname
                        )
                        changed = True
            if not changed:
                break
        findings: List[TaintFinding] = []
        for qualname in names:
            summary = self.flows[qualname]
            if not summary.sources:
                continue
            reaches_sink, reaches_ret = self._evaluate(qualname)
            module = self.graph.functions[qualname].module if (
                qualname in self.graph.functions
            ) else ""
            for source in summary.sources:
                node = f"src:{source.id}"
                sink: Optional[str] = None
                if node in reaches_sink:
                    sink = reaches_sink[node]
                elif node in reaches_ret and qualname in self.ret_sink:
                    sink = f"{self.ret_sink[qualname]} (through the " \
                           f"return value)"
                if sink is not None:
                    findings.append(
                        TaintFinding(
                            qualname=qualname,
                            module=module,
                            line=source.line,
                            column=source.column,
                            text=source.text,
                            sink=sink,
                        )
                    )
        return findings
