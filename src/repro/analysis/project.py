"""Project-level analysis: records, profiles, cache, and the engine.

This is the front door of the interprocedural analyzer. One run is::

    collect files  →  hash  →  (cache)  →  per-module records
                   →  call graph + flows  →  project rules  →  findings

A **module record** is everything the engine needs from one file —
symbol table, flow summaries, local-rule findings, suppression lines —
as plain picklable data. Records are built in parallel across a
process pool on cold runs and come back from the on-disk cache
(:mod:`repro.analysis.cache`) byte-for-byte on warm ones; the ASTs
themselves never outlive the builder.

**Profiles** tune rules per directory: production sources take every
rule; benchmarks may read the wall clock (timing *is* their job);
tests may build and mutate snapshot indexes in setup code. Rule
scoping stays canonical across profiles where it matters —
canonicalization taint is enforced everywhere, because a benchmark or
test that serializes unsorted mappings can still mask a real ordering
bug.

The analyzer's own fixture corpus (``tests/analysis/fixtures``) is
excluded: those files are *deliberately* dirty.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.cache import AnalysisCache, project_fingerprint, source_sha
from repro.analysis.callgraph import (
    CallGraph,
    ModuleSymbols,
    build_module_symbols,
    dotted_of,
)
from repro.analysis.dataflow import FlowSummary, build_module_flows
from repro.analysis.findings import (
    Finding,
    is_suppressed,
    suppressed_rules,
)
from repro.analysis.interproc import ProjectModel, ProjectRule, project_rules
from repro.analysis.rules import default_rules
from repro.analysis.runner import (
    PARSE_ERROR,
    AnalysisResult,
    _python_files,
    logical_module,
)

#: Directory profiles and the *local* rule ids they exclude.
PROFILE_LOCAL_EXCLUDES: Dict[str, FrozenSet[str]] = {
    "src": frozenset(),
    # Benchmarks measure wall-clock time on purpose.
    "bench": frozenset({"wall-clock"}),
    # Tests stage clocks and timelines deliberately.
    "tests": frozenset({"wall-clock"}),
}

#: Directory profiles and the *project* rule ids they exclude.
PROFILE_PROJECT_EXCLUDES: Dict[str, FrozenSet[str]] = {
    "src": frozenset(),
    "bench": frozenset({"snapshot-mutation"}),
    # Test setup legitimately builds and pokes snapshot indexes.
    "tests": frozenset({"snapshot-mutation"}),
}

#: Path fragments never analyzed (deliberately-dirty fixture corpora
#: and the analyzer's own cache).
EXCLUDED_FRAGMENTS: Tuple[str, ...] = (
    "tests/analysis/fixtures",
    ".repro-analysis-cache",
)


def profile_for(module: str) -> str:
    """The directory profile of a module key."""
    if module.startswith("benchmarks/") or module.startswith("bench_"):
        return "bench"
    if module.startswith(("tests/", "test_")) or "/tests/" in module:
        return "tests"
    return "src"


def module_key(path: str, root: Optional[str] = None) -> str:
    """Stable, unique module key for *path*.

    Files inside a ``repro`` package keep their logical path
    (``repro/stream/state.py``) so rule scoping matches the runner;
    everything else keys by its root-relative path
    (``tests/stream/test_engine.py``).
    """
    logical = logical_module(path)
    if logical.startswith("repro/") or logical == "repro":
        return logical
    base = root if root is not None else os.getcwd()
    relative = os.path.relpath(os.path.abspath(path), os.path.abspath(base))
    if relative.startswith(".."):
        relative = os.path.normpath(path)
    return relative.replace(os.sep, "/")


@dataclass
class ModuleRecord:
    """Everything the engine keeps from one analyzed file."""

    module: str
    path: str
    sha: str
    profile: str
    symbols: Optional[ModuleSymbols] = None
    flows: Dict[str, FlowSummary] = field(default_factory=dict)
    #: suppression-filtered local findings, *unfiltered by --rule*
    local_findings: List[Finding] = field(default_factory=list)
    suppressions: Dict[int, Optional[FrozenSet[str]]] = field(
        default_factory=dict
    )


def build_record(
    source: str,
    path: str,
    module: str,
    profile: str,
    sha: Optional[str] = None,
) -> ModuleRecord:
    """Parse one file into its :class:`ModuleRecord`."""
    record = ModuleRecord(
        module=module,
        path=path,
        sha=sha if sha is not None else source_sha(
            source.encode("utf-8")
        ),
        profile=profile,
    )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        record.local_findings.append(
            Finding(
                path=path,
                line=error.lineno or 1,
                column=(error.offset or 0) or 1,
                rule=PARSE_ERROR,
                message=f"could not parse file: {error.msg}",
            )
        )
        return record
    record.symbols = build_module_symbols(tree, module, path)
    record.flows = build_module_flows(tree, record.symbols)
    record.suppressions = suppressed_rules(source)
    excluded = PROFILE_LOCAL_EXCLUDES.get(profile, frozenset())
    for rule in default_rules():
        if rule.id in excluded or not rule.applies_to(module):
            continue
        for finding in rule.check(tree, module, path):
            if not is_suppressed(finding, record.suppressions):
                record.local_findings.append(finding)
    record.local_findings.sort()
    return record


def _build_record_from_disk(
    job: Tuple[str, str, str, str]
) -> ModuleRecord:
    """Pool worker: read and analyze one file (submission-ordered)."""
    path, module, profile, sha = job
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return build_record(source, path, module, profile, sha=sha)


def _build_record_chunk(
    shard_index: int, jobs: Sequence[Tuple[str, str, str, str]]
) -> List[ModuleRecord]:
    """Backend shard task: one contiguous chunk of cache misses."""
    return [_build_record_from_disk(job) for job in jobs]


@dataclass
class ProjectResult(AnalysisResult):
    """An :class:`AnalysisResult` plus engine-level accounting."""

    cache_stats: Dict[str, Any] = field(default_factory=dict)
    modules: Tuple[str, ...] = ()


class ProjectAnalyzer:
    """The interprocedural engine over one or more directory roots."""

    #: Cold-miss threshold below which the process pool is not worth
    #: its fork cost.
    POOL_THRESHOLD = 24

    def __init__(
        self,
        cache: Optional[AnalysisCache] = None,
        jobs: Optional[int] = None,
        rules: Optional[Sequence[ProjectRule]] = None,
        root: Optional[str] = None,
    ) -> None:
        self.cache = cache
        self.jobs = jobs
        self.project_rules: Tuple[ProjectRule, ...] = tuple(
            project_rules() if rules is None else rules
        )
        self.root = root

    # -- public API --------------------------------------------------------

    def analyze_paths(
        self,
        paths: Sequence[str],
        rule_filter: Optional[Set[str]] = None,
        changed: Optional[Set[str]] = None,
    ) -> ProjectResult:
        """Analyze files/directories; see module docstring for phases.

        *rule_filter* keeps only the named rule ids. *changed* is a set
        of module keys: findings are restricted to modules call-graph-
        reachable from them (the ``--changed`` fast path).
        """
        if self.cache is not None:
            self.cache.reset_stats()
        files = self._collect(paths)
        triples = [
            (module, sha, profile)
            for module, (_, sha, profile) in sorted(files.items())
        ]
        fingerprint = project_fingerprint(triples)
        # Full-warm shortcut: unchanged tree, unfiltered run.
        if self.cache is not None and rule_filter is None and (
            changed is None
        ):
            cached = self.cache.load_project(fingerprint)
            if cached is not None:
                cached.cache_stats = self.cache.stats.as_dict()
                return cached
        records = self._records(files)
        result = self._assemble(records, rule_filter, changed)
        if self.cache is not None:
            result.cache_stats = self.cache.stats.as_dict()
            if rule_filter is None and changed is None:
                self.cache.store_project(fingerprint, result)
        return result

    def analyze_sources(
        self,
        sources: Mapping[str, str],
        rule_filter: Optional[Set[str]] = None,
    ) -> ProjectResult:
        """In-memory analysis of ``{module key: source}`` mappings.

        The test-suite entry point: module keys double as paths, so
        fixtures can place themselves on scoped paths like
        ``repro/serve/handlers.py`` without touching disk.
        """
        records = [
            build_record(
                source, module, module, profile_for(module)
            )
            for module, source in sorted(sources.items())
        ]
        return self._assemble(records, rule_filter, None)

    # -- phases ------------------------------------------------------------

    def _collect(
        self, paths: Sequence[str]
    ) -> Dict[str, Tuple[str, str, str]]:
        """module key → (path, sha, profile) for every analyzable file."""
        files: Dict[str, Tuple[str, str, str]] = {}
        for path in paths:
            # Fragment exclusions apply to files discovered *by
            # walking*: pointing the analyzer straight at a fixture
            # file or at the fixture directory itself is an explicit
            # request and is honored (that is how the fixture tests
            # and spot checks exercise the CLI).
            root_normalized = path.replace(os.sep, "/")
            waived = frozenset(
                fragment
                for fragment in EXCLUDED_FRAGMENTS
                if fragment in root_normalized
            )
            explicit_file = os.path.isfile(path)
            for file_path in _python_files(path):
                normalized = file_path.replace(os.sep, "/")
                if not explicit_file and any(
                    fragment in normalized
                    for fragment in EXCLUDED_FRAGMENTS
                    if fragment not in waived
                ):
                    continue
                module = module_key(file_path, self.root)
                with open(file_path, "rb") as handle:
                    sha = source_sha(handle.read())
                files[module] = (file_path, sha, profile_for(module))
        return files

    def _records(
        self, files: Dict[str, Tuple[str, str, str]]
    ) -> List[ModuleRecord]:
        records: Dict[str, ModuleRecord] = {}
        misses: List[Tuple[str, str, str, str]] = []
        for module in sorted(files):
            path, sha, profile = files[module]
            cached: Optional[ModuleRecord] = None
            if self.cache is not None:
                cached = self.cache.load_module(module, sha, profile)
            if cached is not None:
                records[module] = cached
            else:
                misses.append((path, module, profile, sha))
        built = self._build_missing(misses)
        for record in built:
            records[record.module] = record
            if self.cache is not None:
                self.cache.store_module(
                    record.module, record.sha, record.profile, record
                )
        return [records[module] for module in sorted(records)]

    def _build_missing(
        self, misses: List[Tuple[str, str, str, str]]
    ) -> List[ModuleRecord]:
        if not misses:
            return []
        jobs = self.jobs
        if jobs is None:
            jobs = min(os.cpu_count() or 1, 8)
        if jobs <= 1 or len(misses) < self.POOL_THRESHOLD:
            return [_build_record_from_disk(job) for job in misses]
        # Contiguous chunks through the shared backend layer keep
        # record order (and therefore every downstream report)
        # byte-identical to the serial path.
        from repro.parallel.backend import resolve_backend
        from repro.parallel.sharding import chunk_records

        chunks = [
            chunk
            for chunk in chunk_records(misses, jobs)
            if chunk
        ]
        executor = resolve_backend(
            "local", workers=jobs, shard_count=len(chunks)
        )
        built = executor.map_shards(_build_record_chunk, chunks)
        return [record for chunk in built for record in chunk]

    def _assemble(
        self,
        records: List[ModuleRecord],
        rule_filter: Optional[Set[str]],
        changed: Optional[Set[str]],
    ) -> ProjectResult:
        tables = {
            record.module: record.symbols
            for record in records
            if record.symbols is not None
        }
        graph = CallGraph(tables)
        flows: Dict[str, FlowSummary] = {}
        for record in records:
            flows.update(record.flows)
        paths = {record.module: record.path for record in records}
        model = ProjectModel(graph, flows, paths)
        by_path = {record.path: record for record in records}

        local_ids: Set[str] = set()
        for record in records:
            excluded = PROFILE_LOCAL_EXCLUDES.get(
                record.profile, frozenset()
            )
            local_ids.update(
                rule.id for rule in default_rules()
                if rule.id not in excluded
            )
        result = ProjectResult(
            files_checked=len(records),
            modules=tuple(sorted(paths)),
        )
        findings: List[Finding] = []
        for record in records:
            for finding in record.local_findings:
                if rule_filter is not None and (
                    finding.rule not in rule_filter
                    and finding.rule != PARSE_ERROR
                ):
                    continue
                findings.append(finding)
        ran_project: List[str] = []
        for rule in self.project_rules:
            if rule_filter is not None and rule.id not in rule_filter:
                continue
            ran_project.append(rule.id)
            for finding in rule.check_project(model):
                record = by_path.get(finding.path)
                if record is not None:
                    if rule.id in PROFILE_PROJECT_EXCLUDES.get(
                        record.profile, frozenset()
                    ):
                        continue
                    if is_suppressed(finding, record.suppressions):
                        continue
                findings.append(finding)
        if changed is not None:
            keep = graph.reachable_modules(set(changed))
            module_of = {
                record.path: record.module for record in records
            }
            findings = [
                finding for finding in findings
                if module_of.get(finding.path, finding.path) in keep
                or finding.rule == PARSE_ERROR
            ]
        result.findings = findings
        ids = sorted(local_ids) + ran_project
        if rule_filter is not None:
            ids = [
                rule_id for rule_id in ids
                if rule_id in rule_filter or rule_id == PARSE_ERROR
            ]
        result.rules_run = tuple(ids)
        result.finalize()
        return result


def all_rule_descriptions() -> List[Tuple[str, str]]:
    """(id, summary) for every local and project rule, for reports."""
    described: List[Tuple[str, str]] = [
        (rule.id, rule.summary) for rule in default_rules()
    ]
    described.extend(
        (rule.id, rule.summary) for rule in project_rules()
    )
    described.append((PARSE_ERROR, "file could not be parsed"))
    return described


__all__ = [
    "ModuleRecord",
    "ProjectAnalyzer",
    "ProjectResult",
    "all_rule_descriptions",
    "build_record",
    "dotted_of",
    "module_key",
    "profile_for",
]
