"""Project-wide symbol table and call graph.

The interprocedural rules (``repro/analysis/interproc.py``) need to
answer questions no single-file AST pass can: *does this value reach a
serializer three calls away?* *does this ``async def`` ever hit a
blocking syscall?* This module supplies the substrate: a per-module
symbol table (functions, classes, imports, attribute and variable
types) and a project call graph with best-effort static resolution.

Resolution is deliberately syntactic and conservative:

* bare names resolve through the module's import table and its own
  top-level definitions;
* ``self.method(...)`` resolves through the enclosing class and its
  project-resolvable bases (method dispatch by declared class);
* ``obj.method(...)`` resolves when ``obj``'s type is *declared* — a
  parameter annotation, a local ``x: T`` / ``x = T(...)`` assignment,
  or a ``self.attr = T(...)`` attribution in the class ``__init__``;
* everything else degrades to an *external* dotted symbol
  (``json.dumps``) or an *unknown* method key (``.append``), which the
  dataflow layer treats as opaque pass-through.

Every structure here is plain picklable data so module summaries can be
cached on disk (``repro/analysis/cache.py``) and shipped across the
multiprocess analysis pool.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple, Union

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Builtin exception names a project class may ultimately derive from.
BUILTIN_EXCEPTIONS = frozenset(
    {
        "BaseException", "Exception", "ValueError", "TypeError",
        "RuntimeError", "KeyError", "IndexError", "OSError", "IOError",
        "ArithmeticError", "LookupError", "AttributeError",
        "NotImplementedError", "StopIteration", "ConnectionError",
    }
)

_OPTIONAL_RE = re.compile(r"^Optional\[(?P<inner>[A-Za-z_][A-Za-z0-9_.]*)\]$")
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*$")


def dotted_of(module_key: str) -> str:
    """Dotted module name for a module key (``repro/stream/engine.py``)."""
    name = module_key[:-3] if module_key.endswith(".py") else module_key
    if name.endswith("/__init__"):
        name = name[: -len("/__init__")]
    return name.replace("/", ".")


def call_symbol(func: ast.expr) -> Optional[str]:
    """Symbolic callee for a call's ``func`` expression.

    ``json.dumps`` → ``"json.dumps"``; ``self.x.apply`` →
    ``"self.x.apply"``; a method on a non-name root (``f().close``)
    degrades to ``".close"``; anything else is ``None``.
    """
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    if parts:
        return "." + parts[0]
    return None


def annotation_symbol(node: Optional[ast.expr]) -> Optional[str]:
    """The raw dotted type name an annotation declares, if any."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return call_symbol(node)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        match = _OPTIONAL_RE.match(text)
        if match is not None:
            text = match.group("inner")
        return text if _IDENT_RE.match(text) else None
    if isinstance(node, ast.Subscript):
        head = node.value
        if isinstance(head, ast.Name) and head.id == "Optional":
            return annotation_symbol(node.slice)
        if (
            isinstance(head, ast.Attribute)
            and head.attr == "Optional"
        ):
            return annotation_symbol(node.slice)
    return None


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    symbol: str
    line: int
    column: int
    arg_count: int
    #: Symbolic forms of name/attribute arguments (tuple literals are
    #: flattened), for declared-type checks at fork boundaries.
    arg_symbols: Tuple[str, ...] = ()


@dataclass(frozen=True)
class RaiseSite:
    """A ``raise Symbol(...)`` statement."""

    symbol: str
    line: int
    column: int


@dataclass(frozen=True)
class HandlerSite:
    """An ``except`` handler: caught types and what the body does."""

    type_symbols: Tuple[str, ...]
    has_raise: bool
    call_symbols: Tuple[str, ...]
    line: int
    column: int


@dataclass(frozen=True)
class AttrWrite:
    """An assignment ``base.attr = ...`` inside a function body."""

    base: str
    attr: str
    line: int
    column: int


@dataclass
class FunctionSymbol:
    """One function or method, with everything rules ask about."""

    qualname: str
    module: str
    name: str
    class_name: Optional[str]
    is_async: bool
    line: int
    column: int
    params: Tuple[str, ...]
    param_types: Dict[str, str] = field(default_factory=dict)
    var_types: Dict[str, str] = field(default_factory=dict)
    calls: Tuple[CallSite, ...] = ()
    raises: Tuple[RaiseSite, ...] = ()
    handlers: Tuple[HandlerSite, ...] = ()
    attr_writes: Tuple[AttrWrite, ...] = ()


@dataclass
class ClassSymbol:
    """One class: methods, resolved bases, and attribute types."""

    name: str
    qualname: str
    module: str
    line: int
    bases: Tuple[str, ...] = ()
    methods: Dict[str, FunctionSymbol] = field(default_factory=dict)
    #: ``self.attr`` → declared/constructed dotted type symbol.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: method name → attrs that method assigns on ``self``.
    attr_assigns: Dict[str, Tuple[AttrWrite, ...]] = field(
        default_factory=dict
    )


@dataclass
class ModuleSymbols:
    """The symbol table of one parsed module."""

    module: str
    path: str
    dotted: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionSymbol] = field(default_factory=dict)
    classes: Dict[str, ClassSymbol] = field(default_factory=dict)

    def all_functions(self) -> List[FunctionSymbol]:
        out = list(self.functions.values())
        for cls in self.classes.values():
            out.extend(cls.methods.values())
        return out


def _flatten_arg_symbols(call: ast.Call) -> Tuple[str, ...]:
    symbols: List[str] = []
    values: List[ast.expr] = list(call.args)
    values.extend(
        keyword.value for keyword in call.keywords
        if keyword.value is not None
    )
    queue = values
    while queue:
        value = queue.pop(0)
        if isinstance(value, (ast.Tuple, ast.List)):
            queue = list(value.elts) + queue
            continue
        if isinstance(value, ast.Starred):
            queue = [value.value] + queue
            continue
        if isinstance(value, (ast.Name, ast.Attribute)):
            symbol = call_symbol(value)
            if symbol is not None:
                symbols.append(symbol)
    return tuple(symbols)


class _FunctionCollector(ast.NodeVisitor):
    """Collects call/raise/handler/write facts inside one function."""

    def __init__(self) -> None:
        self.calls: List[CallSite] = []
        self.raises: List[RaiseSite] = []
        self.handlers: List[HandlerSite] = []
        self.attr_writes: List[AttrWrite] = []
        self.var_types: Dict[str, str] = {}

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested functions are collected as their own symbols

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_Call(self, node: ast.Call) -> None:
        symbol = call_symbol(node.func)
        if symbol is not None:
            self.calls.append(
                CallSite(
                    symbol=symbol,
                    line=node.lineno,
                    column=node.col_offset,
                    arg_count=len(node.args) + len(node.keywords),
                    arg_symbols=_flatten_arg_symbols(node),
                )
            )
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        if isinstance(exc, ast.Call):
            symbol = call_symbol(exc.func)
        elif isinstance(exc, (ast.Name, ast.Attribute)):
            symbol = call_symbol(exc)
        else:
            symbol = None
        if symbol is not None:
            self.raises.append(
                RaiseSite(symbol, node.lineno, node.col_offset)
            )
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        types: List[str] = []
        if isinstance(node.type, ast.Tuple):
            elements: List[ast.expr] = list(node.type.elts)
        elif node.type is not None:
            elements = [node.type]
        else:
            elements = []
        for element in elements:
            symbol = call_symbol(element)
            if symbol is not None:
                types.append(symbol)
        has_raise = any(
            isinstance(inner, ast.Raise)
            for statement in node.body
            for inner in ast.walk(statement)
        )
        body_calls: List[str] = []
        for statement in node.body:
            for inner in ast.walk(statement):
                if isinstance(inner, ast.Call):
                    symbol = call_symbol(inner.func)
                    if symbol is not None:
                        body_calls.append(symbol)
        self.handlers.append(
            HandlerSite(
                type_symbols=tuple(types),
                has_raise=has_raise,
                call_symbols=tuple(body_calls),
                line=node.lineno,
                column=node.col_offset,
            )
        )
        self.generic_visit(node)

    def _record_target(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if isinstance(value, ast.Call):
                symbol = call_symbol(value.func)
                if symbol is not None and symbol[:1].isalpha():
                    self.var_types.setdefault(target.id, symbol)
        elif isinstance(target, ast.Attribute):
            base = call_symbol(target.value)
            if base is not None and "." not in base:
                self.attr_writes.append(
                    AttrWrite(
                        base=base,
                        attr=target.attr,
                        line=target.lineno,
                        column=target.col_offset,
                    )
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            declared = annotation_symbol(node.annotation)
            if declared is not None:
                self.var_types.setdefault(node.target.id, declared)
        elif isinstance(node.target, ast.Attribute) and node.value is not None:
            self._record_target(node.target, node.value)
        self.generic_visit(node)


def _collect_function(
    node: _FunctionNode,
    module: str,
    dotted: str,
    class_name: Optional[str],
) -> FunctionSymbol:
    arguments = node.args
    ordered = (
        list(arguments.posonlyargs)
        + list(arguments.args)
        + list(arguments.kwonlyargs)
    )
    params: List[str] = []
    param_types: Dict[str, str] = {}
    for index, argument in enumerate(ordered):
        if index == 0 and class_name is not None and argument.arg in (
            "self", "cls"
        ):
            continue
        params.append(argument.arg)
        declared = annotation_symbol(argument.annotation)
        if declared is not None:
            param_types[argument.arg] = declared
    collector = _FunctionCollector()
    for statement in node.body:
        collector.visit(statement)
    var_types = dict(param_types)
    var_types.update(collector.var_types)
    prefix = f"{dotted}.{class_name}." if class_name else f"{dotted}."
    return FunctionSymbol(
        qualname=prefix + node.name,
        module=module,
        name=node.name,
        class_name=class_name,
        is_async=isinstance(node, ast.AsyncFunctionDef),
        line=node.lineno,
        column=node.col_offset,
        params=tuple(params),
        param_types=param_types,
        var_types=var_types,
        calls=tuple(collector.calls),
        raises=tuple(collector.raises),
        handlers=tuple(collector.handlers),
        attr_writes=tuple(collector.attr_writes),
    )


def _resolve_raw(
    raw: str, imports: Mapping[str, str], dotted: str, local_names: Set[str]
) -> str:
    """A raw dotted symbol resolved through the import table."""
    head, _, rest = raw.partition(".")
    if head in imports:
        base = imports[head]
        return f"{base}.{rest}" if rest else base
    if head in local_names:
        return f"{dotted}.{raw}"
    return raw


def build_module_symbols(
    tree: ast.Module, module: str, path: str
) -> ModuleSymbols:
    """Parse *tree* into a :class:`ModuleSymbols` table."""
    dotted = dotted_of(module)
    symbols = ModuleSymbols(module=module, path=path, dotted=dotted)
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else name
                symbols.imports[name] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                name = alias.asname or alias.name
                symbols.imports[name] = f"{node.module}.{alias.name}"

    def collect_functions(
        body: List[ast.stmt], class_name: Optional[str]
    ) -> Dict[str, FunctionSymbol]:
        collected: Dict[str, FunctionSymbol] = {}
        for statement in body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                collected[statement.name] = _collect_function(
                    statement, module, dotted, class_name
                )
        return collected

    local_names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local_names.add(node.name)
        elif isinstance(node, ast.ClassDef):
            local_names.add(node.name)

    symbols.functions = collect_functions(tree.body, None)
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        bases: List[str] = []
        for base in node.bases:
            raw = call_symbol(base)
            if raw is not None:
                bases.append(
                    _resolve_raw(raw, symbols.imports, dotted, local_names)
                )
        cls = ClassSymbol(
            name=node.name,
            qualname=f"{dotted}.{node.name}",
            module=module,
            line=node.lineno,
            bases=tuple(bases),
            methods=collect_functions(node.body, node.name),
        )
        # Class-level annotations declare attribute types.
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                declared = annotation_symbol(statement.annotation)
                if declared is not None:
                    cls.attr_types[statement.target.id] = _resolve_raw(
                        declared, symbols.imports, dotted, local_names
                    )
        # ``self.attr = T(...)`` / annotated params assigned to attrs.
        for method in cls.methods.values():
            writes = tuple(
                write for write in method.attr_writes
                if write.base == "self"
            )
            if writes:
                cls.attr_assigns[method.name] = writes
        init = cls.methods.get("__init__")
        if init is not None:
            _attribute_init_types(
                cls, init, symbols.imports, dotted, local_names
            )
        symbols.classes[node.name] = cls

    # Resolve recorded var types through imports.
    for function in symbols.all_functions():
        function.var_types = {
            name: _resolve_raw(raw, symbols.imports, dotted, local_names)
            for name, raw in function.var_types.items()
        }
        function.param_types = {
            name: _resolve_raw(raw, symbols.imports, dotted, local_names)
            for name, raw in function.param_types.items()
        }
    return symbols


def _attribute_init_types(
    cls: ClassSymbol,
    init: FunctionSymbol,
    imports: Mapping[str, str],
    dotted: str,
    local_names: Set[str],
) -> None:
    """Infer ``self.attr`` types from the constructor body.

    ``self.x = T(...)`` attributes ``x`` to class ``T``; ``self.x =
    param`` with an annotated parameter inherits the annotation.
    """
    # Calls assigned to attributes: match attr writes to constructor
    # calls on the same line (the collector stores both).
    call_by_line: Dict[int, str] = {}
    for call in init.calls:
        if call.symbol[:1].isalpha():
            call_by_line.setdefault(call.line, call.symbol)
    for write in init.attr_writes:
        if write.base != "self" or write.attr in cls.attr_types:
            continue
        raw = call_by_line.get(write.line)
        if raw is not None and (
            raw[:1].isupper() or raw in ("open", "io.open")
            or raw.split(".")[-1][:1].isupper()
            or raw in _KNOWN_HANDLE_FACTORIES
        ):
            cls.attr_types[write.attr] = _resolve_raw(
                raw, imports, dotted, local_names
            )


#: Lower-case factories that still hand back OS handles.
_KNOWN_HANDLE_FACTORIES = frozenset(
    {
        "open", "io.open", "socket.create_connection",
        "socket.create_server", "os.pipe",
    }
)


@dataclass(frozen=True)
class Target:
    """Where a call site resolves to."""

    kind: str  # "project" | "constructor" | "external" | "unknown"
    name: str  # qualname / class qualname / dotted symbol / ".attr"


class CallGraph:
    """Resolved call edges over a set of module symbol tables."""

    def __init__(self, modules: Mapping[str, ModuleSymbols]) -> None:
        self.modules: Dict[str, ModuleSymbols] = dict(modules)
        #: function qualname → symbol
        self.functions: Dict[str, FunctionSymbol] = {}
        #: class qualname → symbol
        self.classes: Dict[str, ClassSymbol] = {}
        for table in self.modules.values():
            for function in table.functions.values():
                self.functions[function.qualname] = function
            for cls in table.classes.values():
                self.classes[cls.qualname] = cls
                for method in cls.methods.values():
                    self.functions[method.qualname] = method
        #: per function: (line, column) → resolved target
        self.resolved: Dict[str, Dict[Tuple[int, int], Target]] = {}
        #: project call edges (caller qualname → callee qualnames)
        self.edges: Dict[str, Set[str]] = {}
        self.callers: Dict[str, Set[str]] = {}
        self._resolve_all()

    # -- resolution --------------------------------------------------------

    def _resolve_all(self) -> None:
        for module in sorted(self.modules):
            table = self.modules[module]
            for function in table.all_functions():
                sites: Dict[Tuple[int, int], Target] = {}
                for call in function.calls:
                    target = self.resolve_call(table, function, call.symbol)
                    sites[(call.line, call.column)] = target
                    callee = self._edge_target(target)
                    if callee is not None:
                        self.edges.setdefault(
                            function.qualname, set()
                        ).add(callee)
                        self.callers.setdefault(callee, set()).add(
                            function.qualname
                        )
                self.resolved[function.qualname] = sites

    def _edge_target(self, target: Target) -> Optional[str]:
        if target.kind == "project":
            return target.name
        if target.kind == "constructor":
            cls = self.classes.get(target.name)
            if cls is not None:
                init = self.lookup_method(cls, "__init__")
                if init is not None:
                    return init.qualname
        return None

    def class_by_dotted(self, dotted: str) -> Optional[ClassSymbol]:
        return self.classes.get(dotted)

    def lookup_method(
        self, cls: ClassSymbol, method: str
    ) -> Optional[FunctionSymbol]:
        """Find *method* on *cls* or its project-resolvable bases."""
        seen: Set[str] = set()
        queue: List[ClassSymbol] = [cls]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if method in current.methods:
                return current.methods[method]
            for base in current.bases:
                parent = self.classes.get(base)
                if parent is not None:
                    queue.append(parent)
        return None

    def attr_type(
        self, cls: ClassSymbol, attr: str
    ) -> Optional[str]:
        """The declared type of ``self.attr`` on *cls* (or bases)."""
        seen: Set[str] = set()
        queue: List[ClassSymbol] = [cls]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if attr in current.attr_types:
                return current.attr_types[attr]
            for base in current.bases:
                parent = self.classes.get(base)
                if parent is not None:
                    queue.append(parent)
        return None

    def resolve_call(
        self,
        table: ModuleSymbols,
        function: FunctionSymbol,
        symbol: str,
    ) -> Target:
        """Resolve one symbolic callee in *function*'s context."""
        if symbol.startswith("."):
            return Target("unknown", symbol)
        head, _, rest = symbol.partition(".")
        if head in ("self", "cls") and function.class_name is not None:
            cls = table.classes.get(function.class_name)
            if cls is None:
                return Target("unknown", "." + symbol.rsplit(".", 1)[-1])
            if rest and "." not in rest:
                method = self.lookup_method(cls, rest)
                if method is not None:
                    return Target("project", method.qualname)
                return Target("unknown", "." + rest)
            if rest:
                attr, _, tail = rest.partition(".")
                declared = self.attr_type(cls, attr)
                if declared is not None and "." not in tail:
                    return self._resolve_typed(declared, tail)
            return Target("unknown", "." + symbol.rsplit(".", 1)[-1])
        declared = function.var_types.get(head)
        if declared is not None and rest and "." not in rest:
            resolved = self._resolve_typed(declared, rest)
            if resolved.kind != "unknown":
                return resolved
        resolved_raw = _resolve_raw(
            symbol,
            table.imports,
            table.dotted,
            set(table.functions) | set(table.classes),
        )
        return self._resolve_dotted(resolved_raw, symbol)

    def _resolve_typed(self, declared: str, method: str) -> Target:
        cls = self.classes.get(declared)
        if cls is None:
            return Target("unknown", "." + method)
        found = self.lookup_method(cls, method)
        if found is not None:
            return Target("project", found.qualname)
        return Target("unknown", "." + method)

    def _resolve_dotted(self, dotted: str, raw: str) -> Target:
        if dotted in self.functions:
            return Target("project", dotted)
        if dotted in self.classes:
            return Target("constructor", dotted)
        # ``module.Class.method`` or ``module.func`` one level deeper.
        head, _, tail = dotted.rpartition(".")
        if head in self.classes:
            cls = self.classes[head]
            found = self.lookup_method(cls, tail)
            if found is not None:
                return Target("project", found.qualname)
        return Target("external", dotted)

    # -- reachability ------------------------------------------------------

    def transitive_callers(self, roots: Set[str]) -> Set[str]:
        """*roots* plus every function that can reach one of them."""
        seen = set(roots)
        queue = list(roots)
        while queue:
            current = queue.pop()
            for caller in self.callers.get(current, ()):
                if caller not in seen:
                    seen.add(caller)
                    queue.append(caller)
        return seen

    def module_adjacency(self) -> Dict[str, Set[str]]:
        """Undirected module dependency map (imports + call edges)."""
        adjacency: Dict[str, Set[str]] = {
            module: set() for module in self.modules
        }
        dotted_index = {
            table.dotted: module for module, table in self.modules.items()
        }
        for module, table in self.modules.items():
            for target in table.imports.values():
                dotted = target
                while dotted:
                    if dotted in dotted_index:
                        other = dotted_index[dotted]
                        if other != module:
                            adjacency[module].add(other)
                            adjacency[other].add(module)
                        break
                    dotted = dotted.rpartition(".")[0]
        for caller, callees in self.edges.items():
            caller_module = self.functions[caller].module
            for callee in callees:
                callee_module = self.functions[callee].module
                if callee_module != caller_module:
                    adjacency[caller_module].add(callee_module)
                    adjacency[callee_module].add(caller_module)
        return adjacency

    def reachable_modules(self, changed: Set[str]) -> Set[str]:
        """Modules connected to *changed* through the dependency map."""
        adjacency = self.module_adjacency()
        seen = {module for module in changed if module in adjacency}
        queue = list(seen)
        while queue:
            current = queue.pop()
            for neighbour in adjacency.get(current, ()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        return seen

    # -- class classification ----------------------------------------------

    def is_exception_class(self, cls: ClassSymbol) -> bool:
        """True when *cls* derives (project-transitively) from Exception."""
        seen: Set[str] = set()
        queue: List[str] = list(cls.bases)
        while queue:
            base = queue.pop(0)
            if base in seen:
                continue
            seen.add(base)
            if base.rpartition(".")[2] in BUILTIN_EXCEPTIONS:
                return True
            parent = self.classes.get(base)
            if parent is not None:
                queue.extend(parent.bases)
        return False

    def derives_from(self, cls: ClassSymbol, ancestor_name: str) -> bool:
        """True when *cls* has a project ancestor named *ancestor_name*."""
        seen: Set[str] = set()
        queue: List[str] = list(cls.bases)
        while queue:
            base = queue.pop(0)
            if base in seen:
                continue
            seen.add(base)
            if base.rpartition(".")[2] == ancestor_name:
                return True
            parent = self.classes.get(base)
            if parent is not None:
                queue.extend(parent.bases)
        return False
