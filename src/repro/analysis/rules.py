"""The determinism & invariant rules, as AST visitors.

Each rule encodes one repo-specific invariant the streaming engine's
checkpoint byte-identity (and the study's reproducibility generally)
depends on:

``unsorted-iteration``
    Serialization-adjacent code must iterate mappings in canonical
    order. Flags direct ``for``/comprehension iteration over
    ``.items()``/``.keys()``/``.values()`` of instance state or
    parameters — i.e. data that crosses the function boundary — inside
    codec classes (classes defining both ``to_dict`` and ``from_dict``)
    or functions with serialization-shaped names, unless wrapped in
    ``sorted(...)``.

``wall-clock``
    ``repro.core`` and ``repro.stream`` must be pure functions of their
    inputs: no wall-clock reads (``time.time()``, ``datetime.now()``)
    and no module-global RNG (``random.random()`` et al.). Seeded
    ``random.Random`` instances are the sanctioned alternative.

``float-equality``
    Statistics paths must not compare floats with ``==``/``!=``;
    binary-float roundoff makes such comparisons platform- and
    optimisation-sensitive.

``swallowed-exception``
    Bare ``except:`` anywhere, and broad ``except Exception`` handlers
    that swallow (never re-raise) on ingest paths, hide data-quality
    problems that should quarantine a partition instead.

``mutable-default``
    Mutable default arguments alias state across calls — classic
    accumulated-state nondeterminism.

``schema-drift``
    Every field a codec class's ``__init__`` writes must be read by both
    its checkpoint encoder (``to_dict``) and decoder (``from_dict``);
    a field one side forgot is exactly the silent state loss that breaks
    kill-and-resume equivalence. Derived/configuration fields opt out
    with a ``repro: ignore[schema-drift]`` comment on the assignment.

``unordered-futures``
    :mod:`repro.parallel` merges per-shard results on the promise that
    they arrive in shard-index order; collecting worker results in
    *completion* order (``concurrent.futures.as_completed``,
    ``pool.imap_unordered``) would make merged output depend on OS
    scheduling — the exact nondeterminism the subsystem exists to rule
    out. Iterate the submitted futures list and call ``.result()`` in
    shard-index order instead.

``row-boxing-in-hot-path``
    The measurement, streaming, and segment-store layers move data as
    columnar :class:`repro.batch.batch.ObservationBatch` objects;
    constructing a ``DomainObservation`` per row inside a loop there
    reintroduces the per-row boxing the batch plane exists to
    eliminate. Stay columnar (or use ``batch.row(i)`` lazily); the
    sanctioned row-shaped compatibility sites carry a
    ``repro: ignore[row-boxing-in-hot-path]`` suppression.

``decode-in-segment-hot-path``
    The v2 segment read path (:mod:`repro.store`) decodes whole column
    pages through :func:`repro.store.codecs.decode_page` and translates
    rows through the dictionary index list. Object-serialization
    decoders there (``json.loads``, ``pickle.loads``, ``marshal``) — or
    a ``for ... in range(rows)`` loop that parses each row individually
    — reintroduce exactly the per-row decode cost the binary format
    eliminated. The store manifest (``manifest.json``, read once per
    store open) and the v1 conversion path are off the hot path and
    exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.findings import Finding

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Function names treated as serialization/aggregation entry points.
SERIALIZATION_NAMES: FrozenSet[str] = frozenset(
    {
        "to_dict", "from_dict", "to_json", "from_json", "to_text",
        "from_text", "to_line", "from_line", "save", "load", "dumps",
        "dump_state", "serialize", "deserialize", "result", "intervals",
        "snapshot",
    }
)
SERIALIZATION_PREFIXES: Tuple[str, ...] = (
    "encode", "decode", "dump_", "save_", "load_", "serialize_",
    "checkpoint",
)
SERIALIZATION_SUFFIXES: Tuple[str, ...] = (
    "_to_dict", "_from_dict", "_to_json", "_from_json", "_intervals",
)

#: Modules that must stay free of wall-clock and global-RNG reads.
DETERMINISTIC_PACKAGES: Tuple[str, ...] = (
    "repro/core/",
    "repro/stream/",
    "repro/serve/",
    "repro/store/",
    "repro/sketch/",
)

#: Sketch paths where mutation methods must stay integer-exact.
SKETCH_PACKAGES: Tuple[str, ...] = ("repro/sketch/",)

#: Mutation-path method names covered by the float-accumulation rule.
SKETCH_MUTATORS: FrozenSet[str] = frozenset(
    {"update", "add", "observe", "merge", "offer"}
)

#: Statistics paths where float == / != comparisons are banned.
STATS_MODULES: FrozenSet[str] = frozenset(
    {
        "repro/core/stats.py",
        "repro/core/growth.py",
        "repro/core/flux.py",
        "repro/core/peaks.py",
        "repro/measurement/quality.py",
    }
)

#: Ingest paths where a swallowed broad except hides bad partitions.
INGEST_PACKAGES: Tuple[str, ...] = (
    "repro/stream/",
    "repro/measurement/",
    "repro/mapreduce/",
    "repro/store/",
)

_CLOCK_READS: FrozenSet[str] = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns",
    }
)
_DATETIME_READS: FrozenSet[str] = frozenset({"now", "utcnow", "today"})
_SEEDED_RNG_NAMES: FrozenSet[str] = frozenset({"Random", "SystemRandom"})
_MUTABLE_FACTORIES: FrozenSet[str] = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque"}
)


def is_serialization_name(name: str) -> bool:
    """True when *name* looks like a serialization/aggregation function."""
    return (
        name in SERIALIZATION_NAMES
        or name.startswith(SERIALIZATION_PREFIXES)
        or name.endswith(SERIALIZATION_SUFFIXES)
    )


def _chain_base(node: ast.expr) -> Optional[str]:
    """The base name of an attribute/subscript chain, if it has one.

    ``self._cursors[source].zone_sizes`` → ``"self"``;
    chains rooted in calls or literals (fresh values) return ``None``.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _parameter_names(node: _FunctionNode) -> Set[str]:
    arguments = node.args
    names = {
        arg.arg
        for arg in (
            list(arguments.posonlyargs)
            + list(arguments.args)
            + list(arguments.kwonlyargs)
        )
    }
    if arguments.vararg is not None:
        names.add(arguments.vararg.arg)
    if arguments.kwarg is not None:
        names.add(arguments.kwarg.arg)
    return names


def _codec_classes(tree: ast.Module) -> Set[ast.ClassDef]:
    """Classes that define both ``to_dict`` and ``from_dict``."""
    codecs: Set[ast.ClassDef] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if {"to_dict", "from_dict"} <= methods:
            codecs.add(node)
    return codecs


class Rule:
    """One invariant check over a parsed module."""

    id: str = ""
    summary: str = ""

    def applies_to(self, module: str) -> bool:
        """Whether the rule runs on *module* (a ``repro/...`` rel path)."""
        return True

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> List[Finding]:
        raise NotImplementedError

    def _finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


class _ScopedVisitor(ast.NodeVisitor):
    """A visitor that tracks the enclosing class and function."""

    def __init__(self) -> None:
        self.class_stack: List[ast.ClassDef] = []
        self.function_stack: List[_FunctionNode] = []

    @property
    def current_class(self) -> Optional[ast.ClassDef]:
        return self.class_stack[-1] if self.class_stack else None

    @property
    def current_function(self) -> Optional[_FunctionNode]:
        return self.function_stack[-1] if self.function_stack else None

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node)
        self.generic_visit(node)
        self.class_stack.pop()

    def _visit_function(self, node: _FunctionNode) -> None:
        self.function_stack.append(node)
        self.generic_visit(node)
        self.function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)


class UnsortedIterationRule(Rule):
    id = "unsorted-iteration"
    summary = (
        "unsorted dict/set iteration in checkpoint/serialization/"
        "aggregation functions"
    )

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> List[Finding]:
        rule = self
        codecs = _codec_classes(tree)
        findings: List[Finding] = []

        class Visitor(_ScopedVisitor):
            def _in_scope(self) -> bool:
                function = self.current_function
                if function is None:
                    return False
                if is_serialization_name(function.name):
                    return True
                enclosing = self.current_class
                return enclosing is not None and enclosing in codecs

            def _check_iterable(self, iterable: ast.expr) -> None:
                if not self._in_scope():
                    return
                if not isinstance(iterable, ast.Call):
                    return
                function = iterable.func
                if not isinstance(function, ast.Attribute):
                    return
                if function.attr not in ("items", "keys", "values"):
                    return
                if iterable.args or iterable.keywords:
                    return
                base = _chain_base(function.value)
                if base is None:
                    return
                context = self.current_function
                assert context is not None
                if base not in ("self", "cls") and (
                    base not in _parameter_names(context)
                ):
                    return
                receiver = ast.unparse(function.value)
                findings.append(
                    rule._finding(
                        path,
                        iterable,
                        f"iteration over {receiver}.{function.attr}() in "
                        f"serialization-adjacent function "
                        f"{context.name!r} is not wrapped in sorted(); "
                        f"mapping order would leak into serialized output",
                    )
                )

            def visit_For(self, node: ast.For) -> None:
                self._check_iterable(node.iter)
                self.generic_visit(node)

            def _visit_comprehension(
                self,
                node: Union[
                    ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp
                ],
            ) -> None:
                for generator in node.generators:
                    self._check_iterable(generator.iter)
                self.generic_visit(node)

            def visit_ListComp(self, node: ast.ListComp) -> None:
                self._visit_comprehension(node)

            def visit_SetComp(self, node: ast.SetComp) -> None:
                self._visit_comprehension(node)

            def visit_DictComp(self, node: ast.DictComp) -> None:
                self._visit_comprehension(node)

            def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
                self._visit_comprehension(node)

        Visitor().visit(tree)
        return findings


class WallClockRule(Rule):
    id = "wall-clock"
    summary = (
        "wall-clock or module-global RNG use in deterministic packages "
        "(repro.core/repro.stream/repro.serve/repro.store/repro.sketch)"
    )

    def applies_to(self, module: str) -> bool:
        return module.startswith(DETERMINISTIC_PACKAGES)

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                self._check_call(node, path, findings)
            elif isinstance(node, ast.ImportFrom):
                self._check_import(node, path, findings)
        return findings

    def _check_call(
        self, node: ast.Call, path: str, findings: List[Finding]
    ) -> None:
        function = node.func
        if not isinstance(function, ast.Attribute):
            return
        value = function.value
        if isinstance(value, ast.Name) and value.id == "time":
            if function.attr in _CLOCK_READS:
                findings.append(
                    self._finding(
                        path,
                        node,
                        f"time.{function.attr}() reads the wall clock; "
                        f"deterministic code must take timestamps as input",
                    )
                )
            return
        if isinstance(value, ast.Name) and value.id == "random":
            if function.attr not in _SEEDED_RNG_NAMES:
                findings.append(
                    self._finding(
                        path,
                        node,
                        f"random.{function.attr}() uses the module-global "
                        f"RNG; construct a seeded random.Random instead",
                    )
                )
            return
        if function.attr in _DATETIME_READS:
            base = value.attr if isinstance(value, ast.Attribute) else (
                value.id if isinstance(value, ast.Name) else None
            )
            if base in ("datetime", "date"):
                findings.append(
                    self._finding(
                        path,
                        node,
                        f"{base}.{function.attr}() reads the wall clock; "
                        f"deterministic code must take dates as input",
                    )
                )

    def _check_import(
        self, node: ast.ImportFrom, path: str, findings: List[Finding]
    ) -> None:
        if node.module == "time":
            banned = [
                alias.name
                for alias in node.names
                if alias.name in _CLOCK_READS
            ]
        elif node.module == "random":
            banned = [
                alias.name
                for alias in node.names
                if alias.name not in _SEEDED_RNG_NAMES
            ]
        else:
            return
        for name in banned:
            findings.append(
                self._finding(
                    path,
                    node,
                    f"importing {name!r} from {node.module!r} pulls "
                    f"nondeterminism into a deterministic module",
                )
            )


class UnseededHashRule(Rule):
    id = "unseeded-hash"
    summary = (
        "builtin hash() in deterministic packages; its per-process "
        "string salt changes between runs"
    )

    def applies_to(self, module: str) -> bool:
        return module.startswith(DETERMINISTIC_PACKAGES)

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                findings.append(
                    self._finding(
                        path,
                        node,
                        "builtin hash() is salted per process "
                        "(PYTHONHASHSEED); use a keyed digest such as "
                        "repro.sketch.hashing.hash64 instead",
                    )
                )
        return findings


class FloatAccumulationRule(Rule):
    id = "float-accumulation"
    summary = (
        "float arithmetic on a sketch mutation path; summaries must "
        "accumulate in exact integers and convert only in estimators"
    )

    def applies_to(self, module: str) -> bool:
        return module.startswith(SKETCH_PACKAGES)

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in SKETCH_MUTATORS
            ):
                self._check_mutator(node, path, findings)
        return findings

    def _check_mutator(
        self, function: _FunctionNode, path: str, findings: List[Finding]
    ) -> None:
        for node in ast.walk(function):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not function:
                    continue
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, float)
            ):
                findings.append(
                    self._finding(
                        path,
                        node,
                        f"float literal {node.value!r} inside mutator "
                        f"{function.name}(); accumulation order would "
                        f"leak into the state — keep mutation integral",
                    )
                )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, ast.Div
            ):
                findings.append(
                    self._finding(
                        path,
                        node,
                        f"true division inside mutator {function.name}() "
                        f"produces floats; use // or move the ratio into "
                        f"an estimator method",
                    )
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
            ):
                findings.append(
                    self._finding(
                        path,
                        node,
                        f"float() conversion inside mutator "
                        f"{function.name}(); state written here must "
                        f"stay exact — convert in estimators only",
                    )
                )
        return None


class FloatEqualityRule(Rule):
    id = "float-equality"
    summary = "float == / != comparison on statistics paths"

    def applies_to(self, module: str) -> bool:
        return module in STATS_MODULES

    @staticmethod
    def _is_floatish(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, float)
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
        )

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if self._is_floatish(left) or self._is_floatish(right):
                    findings.append(
                        self._finding(
                            path,
                            node,
                            "float == / != comparison; use math.isclose "
                            "or an explicit tolerance",
                        )
                    )
                    break
        return findings


class SwallowedExceptionRule(Rule):
    id = "swallowed-exception"
    summary = "bare except, or broad except that swallows on ingest paths"

    @staticmethod
    def _is_broad(node: Optional[ast.expr]) -> bool:
        if isinstance(node, ast.Name):
            return node.id in ("Exception", "BaseException")
        if isinstance(node, ast.Tuple):
            return any(
                SwallowedExceptionRule._is_broad(element)
                for element in node.elts
            )
        return False

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        on_ingest_path = module.startswith(INGEST_PACKAGES)
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    self._finding(
                        path,
                        node,
                        "bare 'except:' catches everything including "
                        "KeyboardInterrupt; name the exception",
                    )
                )
                continue
            if not on_ingest_path or not self._is_broad(node.type):
                continue
            reraises = any(
                isinstance(inner, ast.Raise)
                for statement in node.body
                for inner in ast.walk(statement)
            )
            if not reraises:
                findings.append(
                    self._finding(
                        path,
                        node,
                        "broad except swallows errors on an ingest path; "
                        "bad partitions must quarantine, not vanish",
                    )
                )
        return findings


class MutableDefaultRule(Rule):
    id = "mutable-default"
    summary = "mutable default argument"

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(
            node, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.SetComp,
                   ast.DictComp)
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_FACTORIES
        )

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            arguments = node.args
            positional = list(arguments.posonlyargs) + list(arguments.args)
            offset = len(positional) - len(arguments.defaults)
            pairs = [
                (positional[offset + index].arg, default)
                for index, default in enumerate(arguments.defaults)
            ]
            pairs.extend(
                (argument.arg, default)
                for argument, default in zip(
                    arguments.kwonlyargs, arguments.kw_defaults
                )
                if default is not None
            )
            name = getattr(node, "name", "<lambda>")
            for argument_name, default in pairs:
                if self._is_mutable(default):
                    findings.append(
                        self._finding(
                            path,
                            default,
                            f"mutable default for {argument_name!r} in "
                            f"{name!r} is shared across calls; default to "
                            f"None (or a tuple/frozenset) instead",
                        )
                    )
        return findings


class SchemaDriftRule(Rule):
    id = "schema-drift"
    summary = (
        "__init__ field missing from the checkpoint encoder or decoder"
    )

    @staticmethod
    def _references(method: _FunctionNode) -> Tuple[Set[str], Set[str]]:
        """(attribute names, string constants) appearing in *method*."""
        attributes: Set[str] = set()
        strings: Set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.Attribute):
                attributes.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ):
                strings.add(node.value)
        return attributes, strings

    @staticmethod
    def _init_fields(init: _FunctionNode) -> List[Tuple[str, ast.stmt]]:
        fields: List[Tuple[str, ast.stmt]] = []
        seen: Set[str] = set()
        for statement in ast.walk(init):
            if isinstance(statement, ast.Assign):
                targets: Sequence[ast.expr] = statement.targets
            elif isinstance(statement, ast.AnnAssign):
                targets = [statement.target]
            else:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr not in seen
                ):
                    seen.add(target.attr)
                    fields.append((target.attr, statement))
        return fields

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods: Dict[str, _FunctionNode] = {
                statement.name: statement
                for statement in node.body
                if isinstance(
                    statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
            }
            if not {"__init__", "to_dict", "from_dict"} <= set(methods):
                continue
            codec_refs = {
                name: self._references(methods[name])
                for name in ("to_dict", "from_dict")
            }
            for field, statement in self._init_fields(methods["__init__"]):
                missing = [
                    name
                    for name, (attributes, strings) in sorted(
                        codec_refs.items()
                    )
                    if field not in attributes
                    and field not in strings
                    and field.lstrip("_") not in strings
                ]
                if missing:
                    findings.append(
                        self._finding(
                            path,
                            statement,
                            f"field {field!r} of {node.name!r} is written "
                            f"by __init__ but never referenced by "
                            f"{' or '.join(missing)}; checkpoint/resume "
                            f"would silently drop it",
                        )
                    )
        return findings


class UnorderedFuturesRule(Rule):
    id = "unordered-futures"
    summary = (
        "completion-order result collection in repro.parallel; merges "
        "must consume shards in shard-index order"
    )

    #: Packages whose merge determinism depends on shard-index order.
    PARALLEL_PACKAGES: Tuple[str, ...] = ("repro/parallel/",)
    _UNORDERED_CALLS: FrozenSet[str] = frozenset(
        {"as_completed", "imap_unordered"}
    )

    def applies_to(self, module: str) -> bool:
        return module.startswith(self.PARALLEL_PACKAGES)

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = self._called_name(node.func)
                if name in self._UNORDERED_CALLS:
                    findings.append(
                        self._finding(
                            path,
                            node,
                            f"{name}() yields worker results in completion "
                            f"order, which depends on OS scheduling; "
                            f"consume futures in shard-index order so "
                            f"merges stay byte-identical",
                        )
                    )
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in self._UNORDERED_CALLS:
                        findings.append(
                            self._finding(
                                path,
                                node,
                                f"importing {alias.name!r} invites "
                                f"completion-order collection; consume "
                                f"futures in shard-index order instead",
                            )
                        )
        return findings

    @staticmethod
    def _called_name(function: ast.expr) -> Optional[str]:
        if isinstance(function, ast.Name):
            return function.id
        if isinstance(function, ast.Attribute):
            return function.attr
        return None


class DirectPoolUseRule(Rule):
    id = "direct-pool-use"
    summary = (
        "multiprocessing/concurrent.futures import outside "
        "repro.parallel; sharded work must go through a Backend"
    )

    #: The only package allowed to talk to process pools directly.
    BACKEND_PACKAGE = "repro/parallel/"
    _POOL_MODULES: FrozenSet[str] = frozenset(
        {"multiprocessing", "concurrent", "concurrent.futures"}
    )

    def applies_to(self, module: str) -> bool:
        return module.startswith("repro/") and not module.startswith(
            self.BACKEND_PACKAGE
        )

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self._POOL_MODULES:
                        findings.append(
                            self._pool_finding(path, node, alias.name)
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".")[0]
                if root in self._POOL_MODULES:
                    findings.append(
                        self._pool_finding(path, node, node.module)
                    )
        return findings

    def _pool_finding(
        self, path: str, node: ast.AST, name: str
    ) -> Finding:
        return self._finding(
            path,
            node,
            f"direct import of {name!r} outside repro.parallel; route "
            f"sharded work through repro.parallel.backend.resolve_backend "
            f"so every pass honours --backend/REPRO_BACKEND and keeps "
            f"the byte-identity and fault-retry contracts",
        )


class RowBoxingRule(Rule):
    id = "row-boxing-in-hot-path"
    summary = (
        "per-row DomainObservation construction inside a loop on a "
        "batch-first hot path"
    )

    #: Packages whose data plane is columnar ObservationBatch.
    HOT_PACKAGES: Tuple[str, ...] = (
        "repro/measurement/",
        "repro/stream/",
        "repro/store/",
    )

    def applies_to(self, module: str) -> bool:
        return module.startswith(self.HOT_PACKAGES)

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> List[Finding]:
        rule = self
        findings: List[Finding] = []

        class Visitor(ast.NodeVisitor):
            """Tracks lexical loop depth (loops and comprehensions)."""

            def __init__(self) -> None:
                self.loop_depth = 0

            def _visit_loop(self, node: ast.AST) -> None:
                self.loop_depth += 1
                self.generic_visit(node)
                self.loop_depth -= 1

            def visit_For(self, node: ast.For) -> None:
                self._visit_loop(node)

            def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
                self._visit_loop(node)

            def visit_While(self, node: ast.While) -> None:
                self._visit_loop(node)

            def visit_ListComp(self, node: ast.ListComp) -> None:
                self._visit_loop(node)

            def visit_SetComp(self, node: ast.SetComp) -> None:
                self._visit_loop(node)

            def visit_DictComp(self, node: ast.DictComp) -> None:
                self._visit_loop(node)

            def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
                self._visit_loop(node)

            def visit_Call(self, node: ast.Call) -> None:
                function = node.func
                name: Optional[str] = None
                if isinstance(function, ast.Name):
                    name = function.id
                elif isinstance(function, ast.Attribute):
                    name = function.attr
                if name == "DomainObservation" and self.loop_depth > 0:
                    findings.append(
                        rule._finding(
                            path,
                            node,
                            "DomainObservation built per row inside a "
                            "loop; this layer's hot paths are columnar "
                            "(ObservationBatch) — keep the data in "
                            "columns or materialise lazily via "
                            "batch.row(i)",
                        )
                    )
                self.generic_visit(node)

        Visitor().visit(tree)
        return findings


class SegmentDecodeRule(Rule):
    id = "decode-in-segment-hot-path"
    summary = (
        "object-serialization decode or per-row parse loop on the "
        "segment read path (repro.store)"
    )

    #: The segment store's read/write hot path.
    HOT_PACKAGES: Tuple[str, ...] = ("repro/store/",)
    #: Off the page hot path: the manifest is metadata (one JSON read
    #: per store open) and migration converts the legacy v1 format.
    EXEMPT_MODULES: FrozenSet[str] = frozenset(
        {"repro/store/manifest.py", "repro/store/migrate.py"}
    )
    _BANNED_MODULES: FrozenSet[str] = frozenset(
        {"json", "pickle", "marshal"}
    )
    _BANNED_CALLS: FrozenSet[str] = frozenset({"load", "loads"})
    #: Names that identify a loop bound as a row count.
    _ROW_COUNTS: FrozenSet[str] = frozenset(
        {"rows", "row_count", "num_rows", "n_rows"}
    )
    #: Calls that parse bytes; one of these per row is the anti-pattern.
    _PARSE_CALLS: FrozenSet[str] = frozenset(
        {"decode", "unpack", "unpack_from", "loads", "load", "from_bytes"}
    )

    def applies_to(self, module: str) -> bool:
        return (
            module.startswith(self.HOT_PACKAGES)
            and module not in self.EXEMPT_MODULES
        )

    @classmethod
    def _is_row_bound(cls, node: ast.expr) -> bool:
        """Whether a ``range()`` argument names a row count."""
        if isinstance(node, ast.Name):
            return node.id in cls._ROW_COUNTS
        if isinstance(node, ast.Attribute):
            return node.attr in cls._ROW_COUNTS
        return False

    @classmethod
    def _is_per_row_range(cls, iterable: ast.expr) -> bool:
        return (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id == "range"
            and any(cls._is_row_bound(arg) for arg in iterable.args)
        )

    @classmethod
    def _parses_per_row(cls, body: Sequence[ast.AST]) -> bool:
        for statement in body:
            for node in ast.walk(statement):
                if not isinstance(node, ast.Call):
                    continue
                function = node.func
                name = (
                    function.attr
                    if isinstance(function, ast.Attribute)
                    else function.id
                    if isinstance(function, ast.Name)
                    else None
                )
                if name in cls._PARSE_CALLS:
                    return True
        return False

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self._BANNED_MODULES:
                        findings.append(
                            self._finding(
                                path,
                                node,
                                f"import of {root!r} on the segment read "
                                f"path; pages are struct-framed binary "
                                f"(repro.store.codecs), not serialized "
                                f"objects",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in self._BANNED_MODULES:
                    findings.append(
                        self._finding(
                            path,
                            node,
                            f"import from {root!r} on the segment read "
                            f"path; pages are struct-framed binary "
                            f"(repro.store.codecs), not serialized objects",
                        )
                    )
            elif isinstance(node, ast.Call):
                function = node.func
                if (
                    isinstance(function, ast.Attribute)
                    and isinstance(function.value, ast.Name)
                    and function.value.id in self._BANNED_MODULES
                    and function.attr in self._BANNED_CALLS
                ):
                    findings.append(
                        self._finding(
                            path,
                            node,
                            f"{function.value.id}.{function.attr}() decodes "
                            f"serialized objects on the segment read path; "
                            f"decode whole pages via "
                            f"repro.store.codecs.decode_page and translate "
                            f"rows through the index list",
                        )
                    )
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_per_row_range(node.iter) and self._parses_per_row(
                    node.body
                ):
                    findings.append(self._per_row_finding(path, node.iter))
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                per_row = any(
                    self._is_per_row_range(generator.iter)
                    for generator in node.generators
                )
                elements: List[ast.AST] = (
                    [node.key, node.value]
                    if isinstance(node, ast.DictComp)
                    else [node.elt]
                )
                if per_row and self._parses_per_row(elements):
                    findings.append(self._per_row_finding(path, node))
        return findings

    def _per_row_finding(self, path: str, node: ast.AST) -> Finding:
        return self._finding(
            path,
            node,
            "per-row parse loop over range(rows) on the segment read "
            "path; decode the whole page once "
            "(repro.store.codecs.decode_page) and map rows through the "
            "dictionary index list",
        )


def default_rules() -> Tuple[Rule, ...]:
    """All shipped rules, in reporting order."""
    return (
        UnsortedIterationRule(),
        WallClockRule(),
        UnseededHashRule(),
        FloatAccumulationRule(),
        FloatEqualityRule(),
        SwallowedExceptionRule(),
        MutableDefaultRule(),
        SchemaDriftRule(),
        UnorderedFuturesRule(),
        DirectPoolUseRule(),
        RowBoxingRule(),
        SegmentDecodeRule(),
    )


def rule_ids() -> List[str]:
    return [rule.id for rule in default_rules()]
