"""Reporters for analysis results.

Both formats are deterministic: findings are emitted in their canonical
``(path, line, column, rule)`` order and JSON keys are fixed, so two runs
over the same tree produce byte-identical reports — CI can diff them.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.analysis.runner import AnalysisResult


def render_text(result: AnalysisResult) -> str:
    """The familiar ``path:line:col: rule: message`` listing + summary."""
    lines = [finding.format() for finding in result.findings]
    count = len(result.findings)
    noun = "finding" if count == 1 else "findings"
    lines.append(
        f"{count} {noun} in {result.files_checked} files "
        f"({len(result.rules_run)} rules)"
    )
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """A machine-readable report (one JSON object, sorted findings)."""
    payload: Dict[str, Any] = {
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "finding_count": len(result.findings),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "column": finding.column,
                "rule": finding.rule,
                "message": finding.message,
            }
            for finding in result.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
