"""repro.analysis — AST-based determinism & invariant linter.

The streaming engine's guarantees (checkpoint byte-identity,
stream-vs-batch equivalence, kill-and-resume) are enforced by tests but
*created* by coding invariants: canonical iteration order in
serializers, no wall-clock or global-RNG reads in pure modules, no
float equality on statistics paths, no swallowed ingest errors, no
mutable defaults, and checkpoint codecs that cover every field of
state. This package checks those invariants statically, via
``python -m repro analyze`` (see ``docs/ANALYSIS.md``).
"""

from repro.analysis.findings import (
    Finding,
    is_suppressed,
    suppressed_rules,
)
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import Rule, default_rules, rule_ids
from repro.analysis.runner import (
    PARSE_ERROR,
    AnalysisResult,
    Analyzer,
    logical_module,
)

__all__ = [
    "Analyzer",
    "AnalysisResult",
    "Finding",
    "PARSE_ERROR",
    "Rule",
    "default_rules",
    "is_suppressed",
    "logical_module",
    "render_json",
    "render_text",
    "rule_ids",
    "suppressed_rules",
]
