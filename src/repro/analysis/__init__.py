"""repro.analysis — determinism & invariant analysis, local and interprocedural.

The streaming engine's guarantees (checkpoint byte-identity,
stream-vs-batch equivalence, kill-and-resume) are enforced by tests but
*created* by coding invariants: canonical iteration order in
serializers, no wall-clock or global-RNG reads in pure modules, no
float equality on statistics paths, no swallowed ingest errors, no
mutable defaults, and checkpoint codecs that cover every field of
state. This package checks those invariants statically, via
``python -m repro analyze`` (see ``docs/ANALYSIS.md``).

Two layers:

* **local rules** (:mod:`repro.analysis.rules`) — single-file AST
  checks, run by :class:`Analyzer`;
* **project rules** (:mod:`repro.analysis.interproc`) — cross-function
  checks over a project-wide call graph
  (:mod:`repro.analysis.callgraph`) and dataflow/taint framework
  (:mod:`repro.analysis.dataflow`), run by
  :class:`~repro.analysis.project.ProjectAnalyzer` with incremental
  caching (:mod:`repro.analysis.cache`), SARIF output
  (:mod:`repro.analysis.sarif`), and a ratcheting suppression baseline
  (:mod:`repro.analysis.baseline`).
"""

from repro.analysis.baseline import (
    Baseline,
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.analysis.cache import AnalysisCache
from repro.analysis.findings import (
    Finding,
    is_suppressed,
    suppressed_rules,
)
from repro.analysis.interproc import (
    ProjectRule,
    project_rule_ids,
    project_rules,
)
from repro.analysis.project import (
    ProjectAnalyzer,
    ProjectResult,
    all_rule_descriptions,
)
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import Rule, default_rules, rule_ids
from repro.analysis.runner import (
    PARSE_ERROR,
    AnalysisResult,
    Analyzer,
    logical_module,
)
from repro.analysis.sarif import render_sarif

__all__ = [
    "AnalysisCache",
    "AnalysisResult",
    "Analyzer",
    "Baseline",
    "BaselineError",
    "Finding",
    "PARSE_ERROR",
    "ProjectAnalyzer",
    "ProjectResult",
    "ProjectRule",
    "Rule",
    "all_rule_descriptions",
    "default_rules",
    "is_suppressed",
    "load_baseline",
    "logical_module",
    "project_rule_ids",
    "project_rules",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_ids",
    "suppressed_rules",
    "write_baseline",
]
