"""Findings and suppression comments for the determinism linter.

A :class:`Finding` is one rule violation at one source location. Findings
order by ``(path, line, column, rule)`` so reports are stable regardless
of rule execution order — the linter holds itself to the same canonical-
ordering invariant it enforces.

Suppressions are line comments::

    risky_call()  # repro: ignore[rule-id]
    other_call()  # repro: ignore[rule-a, rule-b]
    anything()    # repro: ignore

A bare ``repro: ignore`` silences every rule on that line; the bracketed
form silences only the named rules. Findings anchor to the first line of
the offending statement, so the comment belongs there on multi-line
statements.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s-]*)\])?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    column: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule}: {self.message}"


def suppressed_rules(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """line number → rules suppressed there (``None`` = all rules).

    Lines are 1-based, matching :attr:`Finding.line`. Malformed rule
    lists (empty brackets) behave like a bare ``repro: ignore``.
    """
    suppressions: Dict[int, Optional[FrozenSet[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None or not rules.strip():
            suppressions[lineno] = None
        else:
            suppressions[lineno] = frozenset(
                part.strip() for part in rules.split(",") if part.strip()
            )
    return suppressions


def is_suppressed(
    finding: Finding,
    suppressions: Dict[int, Optional[FrozenSet[str]]],
) -> bool:
    """True when *finding*'s line carries a matching suppression."""
    if finding.line not in suppressions:
        return False
    rules = suppressions[finding.line]
    return rules is None or finding.rule in rules
