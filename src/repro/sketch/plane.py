"""The streaming sketch plane: per-scope summaries the engine maintains.

One :class:`ScopeSketches` per detection scope, updated row by row as
partitions apply (both engine ingest paths feed it identically):

* ``provider_days`` / ``provider_topk`` — domain-days per provider
  (count-min + space-saving), the top-K-by-adoption stream;
* ``provider_day`` — a count-min over ``provider␟day`` keys: the O(1)
  per-provider-per-day adoption counter ``repro.serve`` answers from;
* ``domains`` / ``provider_domains`` — HyperLogLogs for scope-wide and
  per-provider distinct-domain counts;
* ``provider_day_domains`` — one small HyperLogLog per active
  ``(provider, day)``; prefix unions over it yield first-seen influx
  ("joins") series, the churn ranking, and the mass-migration anomaly
  counters;
* ``third_party`` / ``third_party_counts`` — heavy-hitter third-party
  hosters (NS/CNAME SLDs of *unprotected* rows, provider SLDs
  excluded), mirroring the attribution layer's vocabulary.

Every update is a commutative, idempotent-under-max or additive fold of
one ``(domain, day, matches)`` fact, so the serialized plane is a pure
function of the fact set: in-order, late-arrival, kill/resumed, and
shard-merged runs all land on byte-identical state (the space-saving
instances stay in their exact regime while the key universe fits
capacity — see ``docs/SKETCHES.md`` for the precise claim).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Set,
    Tuple,
)

from repro.core.references import SignatureCatalog
from repro.measurement.snapshot import sld_of
from repro.sketch.cms import CountMinSketch, SketchMergeError
from repro.sketch.hashing import hash64
from repro.sketch.hll import HyperLogLog
from repro.sketch.topk import SpaceSaving

#: Separates provider from day in compound count-min/HLL keys.
KEY_SEP = "\x1f"


@dataclass(frozen=True)
class SketchConfig:
    """Shapes and the seed of every sketch the plane maintains."""

    seed: int = 2016
    cms_depth: int = 4
    cms_width: int = 8192
    topk_capacity: int = 128
    third_party_capacity: int = 512
    hll_precision: int = 12
    day_hll_precision: int = 10

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "cms_depth": self.cms_depth,
            "cms_width": self.cms_width,
            "topk_capacity": self.topk_capacity,
            "third_party_capacity": self.third_party_capacity,
            "hll_precision": self.hll_precision,
            "day_hll_precision": self.day_hll_precision,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SketchConfig":
        return cls(
            seed=int(payload["seed"]),
            cms_depth=int(payload["cms_depth"]),
            cms_width=int(payload["cms_width"]),
            topk_capacity=int(payload["topk_capacity"]),
            third_party_capacity=int(payload["third_party_capacity"]),
            hll_precision=int(payload["hll_precision"]),
            day_hll_precision=int(payload["day_hll_precision"]),
        )

    def role_seed(self, role: str) -> int:
        """A stable per-structure seed derived from the plane seed."""
        return hash64(role, self.seed)


class ScopeSketches:
    """One scope's sketch set; every mutation goes through observe()."""

    def __init__(self, config: SketchConfig):
        # Shared shape parameters, not state: rebuilt from the plane's
        # config on load (from_dict re-derives every seed from it).
        self.config = config  # repro: ignore[schema-drift]
        self.rows_observed = 0
        self.matched_rows = 0
        self.provider_days = CountMinSketch(
            config.cms_depth,
            config.cms_width,
            config.role_seed("cms:provider-days"),
        )
        self.provider_day = CountMinSketch(
            config.cms_depth,
            config.cms_width,
            config.role_seed("cms:provider-day"),
        )
        self.third_party_counts = CountMinSketch(
            config.cms_depth,
            config.cms_width,
            config.role_seed("cms:third-party"),
        )
        self.provider_topk = SpaceSaving(config.topk_capacity)
        self.third_party = SpaceSaving(config.third_party_capacity)
        self.domains = HyperLogLog(
            config.hll_precision, config.role_seed("hll:domains")
        )
        self.provider_domains: Dict[str, HyperLogLog] = {}
        self.provider_day_domains: Dict[str, HyperLogLog] = {}

    # -- updates ------------------------------------------------------------

    def observe(
        self,
        domain: str,
        day: int,
        matches: Mapping[str, FrozenSet[object]],
        third_party: Tuple[str, ...],
    ) -> None:
        """Fold one row's match facts in (commutative in row order)."""
        self.rows_observed += 1
        self.domains.add(domain)
        if not matches:
            for key in third_party:
                self.third_party.update(key)
                self.third_party_counts.update(key)
            return
        self.matched_rows += 1
        for provider in sorted(matches):
            day_key = provider + KEY_SEP + str(day)
            self.provider_days.update(provider)
            self.provider_topk.update(provider)
            self.provider_day.update(day_key)
            per_provider = self.provider_domains.get(provider)
            if per_provider is None:
                per_provider = self.provider_domains[provider] = (
                    HyperLogLog(
                        self.config.hll_precision,
                        self.config.role_seed("hll:provider-domains"),
                    )
                )
            per_provider.add(domain)
            per_day = self.provider_day_domains.get(day_key)
            if per_day is None:
                per_day = self.provider_day_domains[day_key] = (
                    HyperLogLog(
                        self.config.day_hll_precision,
                        self.config.role_seed("hll:provider-day"),
                    )
                )
            per_day.add(domain)

    # -- queries ------------------------------------------------------------

    def adoption_estimate(self, provider: str, day: int) -> int:
        """Estimated distinct domains on *provider* at *day* (≥ truth)."""
        return self.provider_day.estimate(
            provider + KEY_SEP + str(day)
        )

    def adoption_error_bound(self) -> float:
        """Absolute ``εN`` bound on :meth:`adoption_estimate`."""
        return self.provider_day.error_bound()

    def distinct_domains(self) -> float:
        return self.domains.estimate()

    def provider_distinct(self, provider: str) -> float:
        counter = self.provider_domains.get(provider)
        return counter.estimate() if counter is not None else 0.0

    def top_providers(self, k: int) -> List[Tuple[str, int, int]]:
        return self.provider_topk.top(k)

    def top_third_parties(self, k: int) -> List[Tuple[str, int, int]]:
        return self.third_party.top(k)

    def provider_names(self) -> List[str]:
        return sorted(self.provider_domains)

    def active_days(self, provider: str) -> List[int]:
        prefix = provider + KEY_SEP
        return sorted(
            int(key[len(prefix):])
            for key in self.provider_day_domains
            if key.startswith(prefix)
        )

    def joins_series(self, provider: str) -> List[Tuple[int, int]]:
        """Estimated first-seen arrivals ("joins") per active day.

        A prefix-union walk over the per-day HyperLogLogs: the day-``t``
        joins estimate is ``|∪_{s≤t}| − |∪_{s<t}|`` — a domain counts
        toward influx at most once, matching the flux analysis's
        first-seen semantics (§4.4.2).
        """
        running = HyperLogLog(
            self.config.day_hll_precision,
            self.config.role_seed("hll:provider-day"),
        )
        series: List[Tuple[int, int]] = []
        previous = 0.0
        prefix = provider + KEY_SEP
        for day in self.active_days(provider):
            running.merge(self.provider_day_domains[prefix + str(day)])
            estimate = running.estimate()
            series.append((day, max(0, round(estimate - previous))))
            previous = estimate
        return series

    def churn_score(self, provider: str) -> int:
        """Total estimated arrivals after the provider's first day.

        The first active day carries the pre-existing customer base
        (everyone protected on day 0 is "first seen" then), so it is
        excluded — same convention as ``FluxSeries.spread``.
        """
        series = self.joins_series(provider)
        return sum(joins for _, joins in series[1:])

    def top_churn(self, k: int) -> List[Tuple[str, int]]:
        scored = sorted(
            (
                (provider, self.churn_score(provider))
                for provider in self.provider_names()
            ),
            key=lambda item: (-item[1], item[0]),
        )
        return scored[: max(0, k)]

    def migration_anomalies(
        self, provider: str, factor: float = 4.0, floor: int = 8
    ) -> List[Tuple[int, int]]:
        """Days whose joins estimate spikes over the provider's norm.

        A day is anomalous when its arrivals exceed ``factor`` times
        the provider's mean daily arrivals (first day excluded) and the
        absolute ``floor`` — the mass-migration signature.
        """
        series = self.joins_series(provider)[1:]
        if not series:
            return []
        mean = sum(joins for _, joins in series) / len(series)
        threshold = max(float(floor), factor * mean)
        return [
            (day, joins) for day, joins in series if joins > threshold
        ]

    # -- merge / copy -------------------------------------------------------

    def merge(self, other: "ScopeSketches") -> None:
        if self.config != other.config:
            raise SketchMergeError("scope sketches differ in config")
        self.rows_observed += other.rows_observed
        self.matched_rows += other.matched_rows
        self.provider_days.merge(other.provider_days)
        self.provider_day.merge(other.provider_day)
        self.third_party_counts.merge(other.third_party_counts)
        self.provider_topk.merge(other.provider_topk)
        self.third_party.merge(other.third_party)
        self.domains.merge(other.domains)
        for provider in sorted(other.provider_domains):
            counter = other.provider_domains[provider]
            mine = self.provider_domains.get(provider)
            if mine is None:
                self.provider_domains[provider] = counter.copy()
            else:
                mine.merge(counter)
        for day_key in sorted(other.provider_day_domains):
            counter = other.provider_day_domains[day_key]
            mine = self.provider_day_domains.get(day_key)
            if mine is None:
                self.provider_day_domains[day_key] = counter.copy()
            else:
                mine.merge(counter)

    def copy(self, include_day_domains: bool = True) -> "ScopeSketches":
        twin = ScopeSketches(self.config)
        twin.rows_observed = self.rows_observed
        twin.matched_rows = self.matched_rows
        twin.provider_days = self.provider_days.copy()
        twin.provider_day = self.provider_day.copy()
        twin.third_party_counts = self.third_party_counts.copy()
        twin.provider_topk = self.provider_topk.copy()
        twin.third_party = self.third_party.copy()
        twin.domains = self.domains.copy()
        twin.provider_domains = {
            provider: counter.copy()
            for provider, counter in sorted(
                self.provider_domains.items()
            )
        }
        if include_day_domains:
            twin.provider_day_domains = {
                day_key: counter.copy()
                for day_key, counter in sorted(
                    self.provider_day_domains.items()
                )
            }
        return twin

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "rows_observed": self.rows_observed,
            "matched_rows": self.matched_rows,
            "provider_days": self.provider_days.to_dict(),
            "provider_day": self.provider_day.to_dict(),
            "third_party_counts": self.third_party_counts.to_dict(),
            "provider_topk": self.provider_topk.to_dict(),
            "third_party": self.third_party.to_dict(),
            "domains": self.domains.to_dict(),
            "provider_domains": {
                provider: counter.to_dict()
                for provider, counter in sorted(
                    self.provider_domains.items()
                )
            },
            "provider_day_domains": {
                day_key: counter.to_dict()
                for day_key, counter in sorted(
                    self.provider_day_domains.items()
                )
            },
        }

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any], config: SketchConfig
    ) -> "ScopeSketches":
        scope = cls(config)
        scope.rows_observed = int(payload["rows_observed"])
        scope.matched_rows = int(payload["matched_rows"])
        scope.provider_days = CountMinSketch.from_dict(
            payload["provider_days"]
        )
        scope.provider_day = CountMinSketch.from_dict(
            payload["provider_day"]
        )
        scope.third_party_counts = CountMinSketch.from_dict(
            payload["third_party_counts"]
        )
        scope.provider_topk = SpaceSaving.from_dict(
            payload["provider_topk"]
        )
        scope.third_party = SpaceSaving.from_dict(
            payload["third_party"]
        )
        scope.domains = HyperLogLog.from_dict(payload["domains"])
        scope.provider_domains = {
            provider: HyperLogLog.from_dict(counter)
            for provider, counter in sorted(
                payload["provider_domains"].items()
            )
        }
        scope.provider_day_domains = {
            day_key: HyperLogLog.from_dict(counter)
            for day_key, counter in sorted(
                payload["provider_day_domains"].items()
            )
        }
        return scope


class SketchPlane:
    """Every scope's sketches plus the third-party key vocabulary."""

    def __init__(
        self,
        config: SketchConfig,
        scope_names: Iterable[str],
        provider_slds: Iterable[str] = (),
    ):
        self.config = config
        self.scopes: Dict[str, ScopeSketches] = {
            name: ScopeSketches(config)
            for name in sorted(set(scope_names))
        }
        #: Provider-owned SLDs excluded from the third-party streams
        #: (same vocabulary the attribution layer subtracts).
        self.provider_slds = frozenset(provider_slds)
        #: (ns_names, www_cnames) → third-party keys. Derived memo,
        #: rebuilt on demand after a resume — never serialized.
        self._third_party_cache: Dict[  # repro: ignore[schema-drift]
            Tuple[Tuple[str, ...], Tuple[str, ...]], Tuple[str, ...]
        ] = {}

    def scope(self, name: str) -> ScopeSketches:
        return self.scopes[name]

    def third_party_keys(
        self,
        ns_names: Tuple[str, ...],
        www_cnames: Tuple[str, ...],
    ) -> Tuple[str, ...]:
        """``ns:<sld>`` / ``cname:<sld>`` keys for one unprotected row."""
        cache_key = (ns_names, www_cnames)
        cached = self._third_party_cache.get(cache_key)
        if cached is not None:
            return cached
        keys = set()
        for name in ns_names:
            sld = sld_of(name)
            if sld and sld not in self.provider_slds:
                keys.add("ns:" + sld)
        for name in www_cnames:
            sld = sld_of(name)
            if sld and sld not in self.provider_slds:
                keys.add("cname:" + sld)
        result = tuple(sorted(keys))
        self._third_party_cache[cache_key] = result
        return result

    def merge(self, other: "SketchPlane") -> None:
        if self.config != other.config:
            raise SketchMergeError("sketch planes differ in config")
        if set(self.scopes) != set(other.scopes):
            raise SketchMergeError("sketch planes differ in scopes")
        for name in sorted(self.scopes):
            self.scopes[name].merge(other.scopes[name])

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": self.config.to_dict(),
            "provider_slds": sorted(self.provider_slds),
            "scopes": {
                name: scope.to_dict()
                for name, scope in sorted(self.scopes.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SketchPlane":
        config = SketchConfig.from_dict(payload["config"])
        plane = cls(
            config,
            scope_names=sorted(payload["scopes"]),
            provider_slds=payload["provider_slds"],
        )
        plane.scopes = {
            name: ScopeSketches.from_dict(scope, config)
            for name, scope in sorted(payload["scopes"].items())
        }
        return plane

    def state_digest(self) -> str:
        """SHA-256 over the canonical serialized plane state."""
        dump = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(dump.encode("utf-8")).hexdigest()


def provider_slds_of(catalog: SignatureCatalog) -> FrozenSet[str]:
    """The provider-owned SLD set of a signature catalog.

    The same vocabulary :class:`repro.core.attribution` subtracts when
    deciding what counts as third-party infrastructure.
    """
    slds: Set[str] = set()
    for signature in catalog:
        slds |= signature.cname_slds
        slds |= signature.ns_slds
    return frozenset(slds)
