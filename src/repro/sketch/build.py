"""Rebuild the sketch plane from a landed store, serial or sharded.

The plane a :class:`~repro.stream.engine.StreamEngine` maintains
incrementally is a pure commutative fold over ``(domain, day, matches)``
facts, so the same state can be rebuilt from history after the fact —
and split across workers: each shard folds a contiguous run of
``(source, day)`` partitions into its own plane, and the parent merges
the shard planes in shard-index order. Because every sketch merge is an
exact cell-wise sum / register max (and the space-saving summaries stay
in their exact regime, see ``docs/SKETCHES.md``), the merged plane is
**byte-identical** to the serial fold and to the live engine plane fed
the same partitions — the property ``tests/sketch/test_identity.py``
pins for three seeds.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro.batch.batch import MatchKey, ObservationBatch
from repro.core.references import RefType, SignatureCatalog
from repro.parallel.backend import BackendSpec, resolve_backend
from repro.parallel.sharding import chunk_records
from repro.sketch.plane import (
    SketchConfig,
    SketchPlane,
    provider_slds_of,
)
from repro.stream.engine import SCOPE_OF_SOURCE

PartitionKey = Tuple[str, int]

Matches = Dict[str, FrozenSet[RefType]]


class BatchStore(Protocol):
    """What a landed store must offer: keys and columnar batches."""

    def partitions(self) -> Sequence[PartitionKey]: ...

    def batch(self, source: str, day: int) -> ObservationBatch: ...


class _PlaneBuilder:
    """Folds store partitions into a plane via the engine's batch path."""

    def __init__(
        self,
        config: SketchConfig,
        catalog: SignatureCatalog,
    ):
        self.catalog = catalog
        self.plane = SketchPlane(
            config,
            scope_names=dict.fromkeys(SCOPE_OF_SOURCE.values()),
            provider_slds=provider_slds_of(catalog),
        )
        self._match_cache: Dict[
            Tuple[Tuple[str, ...], Tuple[str, ...], FrozenSet[int]],
            Matches,
        ] = {}

    def fold(
        self, source: str, day: int, batch: ObservationBatch
    ) -> None:
        """One partition, mirroring ``StreamEngine._apply_batch``."""
        plane = self.plane
        scope = plane.scope(SCOPE_OF_SOURCE[source])
        match = self.catalog.match
        cache = self._match_cache
        names = batch.names
        by_key: Dict[MatchKey, Matches] = {}
        third_by_key: Dict[MatchKey, Tuple[str, ...]] = {}
        for index in range(len(batch)):
            id_key = batch.match_key(index)
            matches = by_key.get(id_key)
            if matches is None:
                text_key = (
                    batch.ns_texts(index),
                    batch.cname_texts(index),
                    batch.asn_set(index),
                )
                matches = cache.get(text_key)
                if matches is None:
                    matches = match(batch.row(index))
                    cache[text_key] = matches
                by_key[id_key] = matches
            domain = names.value(batch.domains[index])
            if matches:
                scope.observe(domain, day, matches, ())
                continue
            third = third_by_key.get(id_key)
            if third is None:
                third = plane.third_party_keys(
                    batch.ns_texts(index), batch.cname_texts(index)
                )
                third_by_key[id_key] = third
            scope.observe(domain, day, matches, third)


#: Per-worker-process builder inputs (set by the pool initializer).
_WORKER_BUILD: Optional[
    Tuple[BatchStore, SignatureCatalog, SketchConfig]
] = None


def _init_build_worker(
    store: BatchStore, catalog: SignatureCatalog, config: SketchConfig
) -> None:
    global _WORKER_BUILD
    _WORKER_BUILD = (store, catalog, config)


def _build_shard(
    shard_index: int, partitions: Sequence[PartitionKey]
) -> Dict[str, object]:
    """Fold one contiguous partition run; returns the plane payload."""
    assert _WORKER_BUILD is not None, "worker initializer did not run"
    store, catalog, config = _WORKER_BUILD
    builder = _PlaneBuilder(config, catalog)
    for source, day in partitions:
        builder.fold(source, day, store.batch(source, day))
    return builder.plane.to_dict()


def store_partitions(
    store: BatchStore, sources: Optional[Sequence[str]] = None
) -> List[PartitionKey]:
    """The store's ``(source, day)`` keys, canonically ordered."""
    wanted = None if sources is None else set(sources)
    return sorted(
        (source, day)
        for source, day in store.partitions()
        if wanted is None or source in wanted
    )


def sketch_from_store(
    store: BatchStore,
    config: Optional[SketchConfig] = None,
    sources: Optional[Sequence[str]] = None,
    catalog: Optional[SignatureCatalog] = None,
) -> SketchPlane:
    """The serial rebuild: fold every partition in canonical order."""
    catalog = catalog or SignatureCatalog.paper_table2()
    builder = _PlaneBuilder(config or SketchConfig(), catalog)
    for source, day in store_partitions(store, sources):
        builder.fold(source, day, store.batch(source, day))
    return builder.plane


def sketch_from_store_sharded(
    store: BatchStore,
    config: Optional[SketchConfig] = None,
    sources: Optional[Sequence[str]] = None,
    catalog: Optional[SignatureCatalog] = None,
    workers: Optional[int] = None,
    shard_count: Optional[int] = None,
    backend: Optional[BackendSpec] = None,
) -> SketchPlane:
    """The sharded rebuild; byte-identical to :func:`sketch_from_store`.

    Contiguous partition runs ship to workers of the resolved
    execution backend (*backend* > ``REPRO_BACKEND`` > local pool);
    shard planes merge in shard-index order through the exact merge
    hooks.
    """
    catalog = catalog or SignatureCatalog.paper_table2()
    config = config or SketchConfig()
    executor = resolve_backend(
        backend, workers=workers, shard_count=shard_count
    )
    chunks = chunk_records(
        store_partitions(store, sources), executor.shard_count
    )
    payloads = executor.map_shards(
        _build_shard,
        [list(chunk) for chunk in chunks],
        initializer=_init_build_worker,
        initargs=(store, catalog, config),
    )
    merged = SketchPlane(
        config,
        scope_names=dict.fromkeys(SCOPE_OF_SOURCE.values()),
        provider_slds=provider_slds_of(catalog),
    )
    for payload in payloads:
        merged.merge(SketchPlane.from_dict(payload))
    return merged
