"""The seeded hash family every sketch shares.

One keyed BLAKE2b digest per key (``digest_size=8`` → 64 bits), with
the sketch seed as the MAC key: the same ``(key, seed)`` pair hashes
identically in every process, on every platform, in every run — unlike
the builtin ``hash()``, whose per-process string salt is exactly the
nondeterminism the identity suite exists to rule out (and which the
analyzer's ``unseeded-hash`` rule bans from this package).

Row indexes for the count-min sketch derive from the single 64-bit
digest by Kirsch–Mitzenmacher double hashing — ``h1 + i·h2 (mod w)`` —
so one hash call serves every depth, keeping the per-update cost flat
in ``d``.
"""

from __future__ import annotations

import hashlib
from typing import List

MASK64 = (1 << 64) - 1


def hash64(key: str, seed: int) -> int:
    """The 64-bit keyed digest of *key* under *seed*."""
    digest = hashlib.blake2b(
        key.encode("utf-8"),
        digest_size=8,
        key=(seed & MASK64).to_bytes(8, "big"),
    )
    return int.from_bytes(digest.digest(), "big")


def row_indexes(value: int, depth: int, width: int) -> List[int]:
    """*depth* row positions in ``[0, width)`` from one 64-bit digest.

    Double hashing: ``h1`` and ``h2`` are the digest halves, ``h2``
    forced odd so successive rows never collapse onto one stride.
    """
    h1 = value >> 32
    h2 = (value & 0xFFFFFFFF) | 1
    return [(h1 + row * h2) % width for row in range(depth)]
