"""HyperLogLog distinct counting, sparse until it earns dense.

Flajolet et al.'s estimator: the top ``p`` bits of the 64-bit keyed
hash pick one of ``m = 2**p`` registers, which keeps the maximum
leading-zero rank of the remaining bits. Relative standard error is
``1.04 / sqrt(m)``; small cardinalities use the linear-counting
correction.

Representation is **state-determined, not history-determined**: the
register multiset lives in a sorted sparse ``index → rank`` map while
the number of touched registers is at most ``m // 4``, and promotes to
the dense array the moment it grows past that. Because every register
is a ``max`` over per-key ranks, and the promotion trigger reads only
the touched-register *count*, the serialized form is a pure function of
the key **set** fed in — any insertion order, any shard decomposition,
any kill/resume split produces byte-identical state, and ``merge`` (a
register-wise max) equals feeding the concatenated stream exactly.

Registers are small integers end to end; floats exist only inside
:meth:`estimate`.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional

from repro.sketch.cms import SketchMergeError
from repro.sketch.hashing import hash64


def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog:
    """A seeded HLL counter over string keys (sparse + dense)."""

    def __init__(self, precision: int = 12, seed: int = 0):
        if not 4 <= precision <= 18:
            raise ValueError("precision must be in [4, 18]")
        self.precision = precision
        self.seed = seed
        self.registers = 1 << precision  # repro: ignore[schema-drift]
        #: Sparse regime: touched register → max rank, sorted on dump.
        self.sparse: Optional[Dict[int, int]] = {}
        #: Dense regime: one rank per register (None while sparse).
        self.dense: Optional[List[int]] = None

    @property
    def sparse_limit(self) -> int:
        """Touched-register count beyond which dense is cheaper."""
        return self.registers // 4

    @property
    def relative_error(self) -> float:
        """The estimator's relative standard error, 1.04/sqrt(m)."""
        return 1.04 / math.sqrt(self.registers)

    # -- updates ------------------------------------------------------------

    def add(self, key: str) -> None:
        value = hash64(key, self.seed)
        tail_bits = 64 - self.precision
        index = value >> tail_bits
        tail = value & ((1 << tail_bits) - 1)
        rank = tail_bits - tail.bit_length() + 1
        self._raise_register(index, rank)

    def _raise_register(self, index: int, rank: int) -> None:
        if self.dense is not None:
            if self.dense[index] < rank:
                self.dense[index] = rank
            return
        assert self.sparse is not None
        current = self.sparse.get(index, 0)
        if current < rank:
            self.sparse[index] = rank
        if len(self.sparse) > self.sparse_limit:
            self._promote()

    def _promote(self) -> None:
        assert self.sparse is not None
        dense = [0] * self.registers
        for index, rank in sorted(self.sparse.items()):
            dense[index] = rank
        self.dense = dense
        self.sparse = None

    # -- queries ------------------------------------------------------------

    def _register_values(self) -> List[int]:
        if self.dense is not None:
            return self.dense
        assert self.sparse is not None
        values = [0] * self.registers
        for index, rank in sorted(self.sparse.items()):
            values[index] = rank
        return values

    def estimate(self) -> float:
        """The bias-corrected cardinality estimate."""
        values = self._register_values()
        m = self.registers
        harmonic = 0.0
        zeros = 0
        for rank in values:
            harmonic += 2.0 ** -rank
            if rank == 0:
                zeros += 1
        raw = _alpha(m) * m * m / harmonic
        if raw <= 2.5 * m and zeros:
            return m * math.log(m / zeros)
        return raw

    # -- merge --------------------------------------------------------------

    def merge(self, other: "HyperLogLog") -> None:
        """Register-wise max; equals feeding both streams serially."""
        if (self.precision, self.seed) != (other.precision, other.seed):
            raise SketchMergeError(
                "HyperLogLog counters differ in precision or seed"
            )
        if other.dense is not None:
            for index, rank in enumerate(other.dense):
                if rank:
                    self._raise_register(index, rank)
            return
        assert other.sparse is not None
        for index in sorted(other.sparse):
            self._raise_register(index, other.sparse[index])

    # -- serialization ------------------------------------------------------

    def copy(self) -> "HyperLogLog":
        twin = HyperLogLog(self.precision, self.seed)
        twin.sparse = dict(self.sparse) if self.sparse is not None else None
        twin.dense = list(self.dense) if self.dense is not None else None
        return twin

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "kind": "hll",
            "precision": self.precision,
            "seed": self.seed,
        }
        if self.dense is not None:
            payload["dense"] = list(self.dense)
        else:
            assert self.sparse is not None
            payload["sparse"] = [
                [index, rank]
                for index, rank in sorted(self.sparse.items())
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HyperLogLog":
        counter = cls(
            precision=int(payload["precision"]),
            seed=int(payload["seed"]),
        )
        if "dense" in payload:
            dense = [int(rank) for rank in payload["dense"]]
            if len(dense) != counter.registers:
                raise ValueError("HLL dense payload shape mismatch")
            counter.sparse = None
            counter.dense = dense
        else:
            counter.sparse = {
                int(index): int(rank)
                for index, rank in payload["sparse"]
            }
            if len(counter.sparse) > counter.sparse_limit:
                raise ValueError("HLL sparse payload over limit")
        return counter
