"""repro.sketch — deterministic, mergeable probabilistic summaries.

Constant-memory streaming analytics over the observation feed: a
count-min sketch (additive and conservative-update variants), a
space-saving top-K summary, and a HyperLogLog cardinality estimator
(sparse + dense), all built on one seeded keyed-hash family so that
serial, sharded, and kill/resumed runs produce **byte-identical**
sketch state. :class:`~repro.sketch.plane.SketchPlane` bundles the
per-scope instances the :class:`~repro.stream.engine.StreamEngine`
maintains incrementally; :mod:`repro.sketch.build` rebuilds the same
plane from a landed store, serially or under
:class:`~repro.parallel.executor.ShardedExecutor`.

See ``docs/SKETCHES.md`` for the error guarantees and the exact merge
semantics (what is provably order-independent, and what is not).
"""

from repro.sketch.cms import CountMinSketch
from repro.sketch.hll import HyperLogLog
from repro.sketch.plane import ScopeSketches, SketchConfig, SketchPlane
from repro.sketch.topk import SpaceSaving

__all__ = [
    "CountMinSketch",
    "HyperLogLog",
    "ScopeSketches",
    "SketchConfig",
    "SketchPlane",
    "SpaceSaving",
]
