"""Space-saving top-K: heavy hitters with per-key error certificates.

Metwally et al.'s algorithm: at most ``capacity`` monitored keys, each
carrying ``(count, error)``. A new key beyond capacity evicts the
minimum counter and inherits its count as both floor and error, which
yields the guaranteed-frequency invariant the property suite pins::

    count − error  ≤  true frequency  ≤  count

Determinism: ties on eviction break on the key itself (the minimum
``(count, key)`` pair goes), so identical update multisets fed in
identical order produce identical state on any platform. While the
summary has never evicted it is simply the exact count map — a pure
function of the update *multiset* — so merging two never-evicted
summaries whose union fits capacity equals feeding the concatenated
stream, byte for byte. Past an eviction the state becomes
order-sensitive (like every bounded heavy-hitter summary); the
``evictions`` counter rides the serialized state so a digest comparison
can tell the exact regime from the lossy one. The streaming plane sizes
its instances above the key universes it feeds (providers come from the
fixed signature catalog; third-party hosters from the world's bounded
pool), keeping the plane in the exact, order-free regime — see
``docs/SKETCHES.md``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

from repro.sketch.cms import SketchMergeError


class SpaceSaving:
    """Bounded top-K counter map with guaranteed-frequency errors."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        #: key → (count, error); error is the evicted floor inherited.
        self.counters: Dict[str, Tuple[int, int]] = {}
        self.evictions = 0
        self.total = 0

    def update(self, key: str, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self.total += count
        entry = self.counters.get(key)
        if entry is not None:
            self.counters[key] = (entry[0] + count, entry[1])
            return
        if len(self.counters) < self.capacity:
            self.counters[key] = (count, 0)
            return
        victim, floor = self._evict()
        del self.counters[victim]
        self.counters[key] = (floor + count, floor)
        self.evictions += 1

    def _evict(self) -> Tuple[str, int]:
        """The deterministic victim: minimum ``(count, key)``."""
        victim = min(
            self.counters, key=lambda key: (self.counters[key][0], key)
        )
        return victim, self.counters[victim][0]

    # -- queries ------------------------------------------------------------

    def estimate(self, key: str) -> int:
        entry = self.counters.get(key)
        return entry[0] if entry is not None else 0

    def guaranteed(self, key: str) -> int:
        """A provable lower bound on *key*'s true frequency."""
        entry = self.counters.get(key)
        return entry[0] - entry[1] if entry is not None else 0

    def top(self, k: int) -> List[Tuple[str, int, int]]:
        """The ``k`` largest ``(key, count, error)``, count-descending."""
        ranked = sorted(
            self.counters.items(),
            key=lambda item: (-item[1][0], item[0]),
        )
        return [
            (key, count, error)
            for key, (count, error) in ranked[: max(0, k)]
        ]

    @property
    def exact(self) -> bool:
        """True while no eviction has ever lost a key (errors all 0)."""
        return self.evictions == 0

    # -- merge --------------------------------------------------------------

    def merge(self, other: "SpaceSaving") -> None:
        """Fold *other* in, key by key in sorted order.

        Exact (and equal to the concatenated feed) when both sides are
        still eviction-free and the union fits capacity; otherwise the
        combined summary keeps the guaranteed-frequency invariant but,
        like any post-eviction state, is order-sensitive.
        """
        if self.capacity != other.capacity:
            raise SketchMergeError(
                "space-saving summaries differ in capacity"
            )
        for key in sorted(other.counters):
            count, error = other.counters[key]
            entry = self.counters.get(key)
            if entry is not None:
                self.counters[key] = (
                    entry[0] + count,
                    entry[1] + error,
                )
            elif len(self.counters) < self.capacity:
                self.counters[key] = (count, error)
            else:
                victim, floor = self._evict()
                del self.counters[victim]
                self.counters[key] = (floor + count, floor + error)
                self.evictions += 1
        self.evictions += other.evictions
        self.total += other.total

    # -- serialization ------------------------------------------------------

    def copy(self) -> "SpaceSaving":
        twin = SpaceSaving(self.capacity)
        twin.counters = dict(self.counters)
        twin.evictions = self.evictions
        twin.total = self.total
        return twin

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "space-saving",
            "capacity": self.capacity,
            "counters": [
                [key, count, error]
                for key, (count, error) in sorted(self.counters.items())
            ],
            "evictions": self.evictions,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SpaceSaving":
        summary = cls(capacity=int(payload["capacity"]))
        summary.counters = {
            str(key): (int(count), int(error))
            for key, count, error in payload["counters"]
        }
        summary.evictions = int(payload["evictions"])
        summary.total = int(payload["total"])
        if len(summary.counters) > summary.capacity:
            raise ValueError("space-saving payload exceeds capacity")
        return summary
