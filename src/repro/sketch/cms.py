"""Count-min sketch: biased-up frequency estimates in fixed memory.

The classic Cormode–Muthukrishnan structure: ``depth`` rows of
``width`` integer cells; an update adds to one cell per row, an
estimate reads the row minimum. Estimates never under-count, and
over-count by at most ``εN`` (``ε = e / width``, ``N`` the total count
folded in) with probability ``1 − δ`` (``δ = e^-depth``).

Two update disciplines:

* **additive** (the default, and the only one the streaming plane
  uses): every touched cell gains ``count``. Cell values are then sums
  over the update multiset, so the state is a pure function of *what*
  was fed, never *in which order or in which shards* — ``merge`` is a
  cell-wise sum and equals feeding the concatenated stream exactly,
  byte for byte.
* **conservative** update tightens estimates by raising each touched
  cell only to ``min-estimate + count``. That reads the current state,
  which makes the result order-dependent — so a conservative sketch
  refuses to merge (see ``docs/SKETCHES.md`` for the two-key
  counterexample).

State is integer-only end to end; floats appear in derived error
bounds, never in anything serialized or accumulated.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping

from repro.sketch.hashing import hash64, row_indexes


class SketchMergeError(ValueError):
    """Two sketches whose states cannot be merged exactly."""


class CountMinSketch:
    """A seeded count-min sketch over string keys."""

    def __init__(
        self,
        depth: int = 4,
        width: int = 2048,
        seed: int = 0,
        conservative: bool = False,
    ):
        if depth < 1 or width < 1:
            raise ValueError("depth and width must be positive")
        self.depth = depth
        self.width = width
        self.seed = seed
        self.conservative = conservative
        self.total = 0
        self.rows: List[List[int]] = [
            [0] * width for _ in range(depth)
        ]

    # -- error guarantees ---------------------------------------------------

    @property
    def epsilon(self) -> float:
        """Over-count is ≤ ``epsilon * total`` with confidence 1 − δ."""
        return math.e / self.width

    @property
    def delta(self) -> float:
        """Probability the ``εN`` bound fails for one estimate."""
        return math.exp(-self.depth)

    def error_bound(self) -> float:
        """The absolute over-count bound ``εN`` at the current total."""
        return self.epsilon * self.total

    # -- updates ------------------------------------------------------------

    def update(self, key: str, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        positions = row_indexes(
            hash64(key, self.seed), self.depth, self.width
        )
        if self.conservative:
            floor = count + min(
                row[positions[index]]
                for index, row in enumerate(self.rows)
            )
            for index, row in enumerate(self.rows):
                cell = positions[index]
                if row[cell] < floor:
                    row[cell] = floor
        else:
            for index, row in enumerate(self.rows):
                row[positions[index]] += count
        self.total += count

    def estimate(self, key: str) -> int:
        positions = row_indexes(
            hash64(key, self.seed), self.depth, self.width
        )
        return min(
            row[positions[index]]
            for index, row in enumerate(self.rows)
        )

    # -- merge --------------------------------------------------------------

    def merge(self, other: "CountMinSketch") -> None:
        """Fold *other* in; equals having fed both streams serially."""
        if (self.depth, self.width, self.seed) != (
            other.depth,
            other.width,
            other.seed,
        ):
            raise SketchMergeError(
                "count-min sketches differ in shape or seed"
            )
        if self.conservative or other.conservative:
            raise SketchMergeError(
                "conservative-update sketches are order-dependent and "
                "do not merge exactly; use the additive variant"
            )
        for index, row in enumerate(self.rows):
            other_row = other.rows[index]
            for cell in range(self.width):
                row[cell] += other_row[cell]
        self.total += other.total

    # -- serialization ------------------------------------------------------

    def copy(self) -> "CountMinSketch":
        twin = CountMinSketch(
            self.depth, self.width, self.seed, self.conservative
        )
        twin.total = self.total
        twin.rows = [list(row) for row in self.rows]
        return twin

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "cms",
            "depth": self.depth,
            "width": self.width,
            "seed": self.seed,
            "conservative": self.conservative,
            "total": self.total,
            "rows": [list(row) for row in self.rows],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CountMinSketch":
        if payload.get("kind", "cms") != "cms":
            raise ValueError("not a count-min payload")
        sketch = cls(
            depth=int(payload["depth"]),
            width=int(payload["width"]),
            seed=int(payload["seed"]),
            conservative=bool(payload["conservative"]),
        )
        sketch.total = int(payload["total"])
        sketch.rows = [
            [int(cell) for cell in row] for row in payload["rows"]
        ]
        if len(sketch.rows) != sketch.depth or any(
            len(row) != sketch.width for row in sketch.rows
        ):
            raise ValueError("count-min payload shape mismatch")
        return sketch
