"""Process-local fault-suppression scope.

When a hardened layer retries or re-executes work that an injected fault
just killed (the parent re-running a crashed shard, a feed re-reading a
partition after rotating to the previous checkpoint), the retry must not
be re-killed by the same schedule — a real platform's retry lands on a
fresh worker or a repaired path. Entering :func:`fault_suppression`
disables every injector in this process for the duration; injectors
check :func:`faults_suppressed` before drawing.

The scope is a plain re-entrant depth counter, not thread-local: the
executor's deterministic retry path is single-threaded by construction
and worker processes each get their own module instance via fork.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_suppression_depth = 0


def faults_suppressed() -> bool:
    """True while at least one suppression scope is active."""
    return _suppression_depth > 0


@contextmanager
def fault_suppression() -> Iterator[None]:
    """Disable fault injection in this process for the ``with`` body."""
    global _suppression_depth
    _suppression_depth += 1
    try:
        yield
    finally:
        _suppression_depth -= 1
