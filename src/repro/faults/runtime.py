"""Process-local fault-suppression scope.

When a hardened layer retries or re-executes work that an injected fault
just killed (the parent re-running a crashed shard, a feed re-reading a
partition after rotating to the previous checkpoint), the retry must not
be re-killed by the same schedule — a real platform's retry lands on a
fresh worker or a repaired path. Entering :func:`fault_suppression`
disables every injector in this process for the duration; injectors
check :func:`faults_suppressed` before drawing.

The scope is a plain re-entrant depth counter, not thread-local: the
executor's deterministic retry path is single-threaded by construction
and worker processes each get their own module instance via fork.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, TypeVar

R = TypeVar("R")

_suppression_depth = 0


def faults_suppressed() -> bool:
    """True while at least one suppression scope is active."""
    return _suppression_depth > 0


@contextmanager
def fault_suppression() -> Iterator[None]:
    """Disable fault injection in this process for the ``with`` body."""
    global _suppression_depth
    _suppression_depth += 1
    try:
        yield
    finally:
        _suppression_depth -= 1


def shard_retryable(error: BaseException) -> bool:
    """Whether a failed shard should be re-executed by its backend.

    Errors that model a lost worker (a broken pool, an injected
    :class:`~repro.faults.errors.WorkerCrash`) carry a
    ``shard_retryable`` attribute; anything else is a real bug and must
    propagate.
    """
    return bool(getattr(error, "shard_retryable", False))


def rerun_shard(
    task: Callable[[int, Any], R], index: int, shard: Any
) -> R:
    """Re-execute one lost shard with injection suppressed.

    This is the crashed-shard recovery primitive shared by every
    execution backend (:mod:`repro.parallel.backend`): the retry models
    a fresh worker on a repaired path, so the same fault plan cannot
    re-kill it, and because the result lands back at the shard's index
    the merged output stays byte-identical.
    """
    with fault_suppression():
        return task(index, shard)
