"""Injection shims: wrapping the platform's real seams with faults.

Each shim wraps a production object behind the *same* interface and
consults a :class:`~repro.faults.plan.FaultInjector` at the seam the
production code actually crosses — partition production, datagram
exchange, per-domain observation, stored segment bytes. Production code
never imports this module; studies opt in by passing a plan
(``repro study --fault-plan plan.json``) and the pipeline swaps the
shims in at construction time.

Corruption helpers are deterministic in the corrupted *content* too:
byte positions derive from CRC of a salt (the partition key, the file
name), never from an RNG shared with firing decisions.
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.dnscore.transport import SimulatedNetwork, Timeout
from repro.faults.errors import PersistentFault, TransientFault
from repro.faults.plan import FaultEvent, FaultInjector
from repro.faults.report import SCOPE_OF_SOURCE
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.measurement.prober import FastProber
from repro.measurement.scheduler import DayPartition
from repro.measurement.snapshot import ObservationSegment
from repro.world.world import World

# -- byte corruption -----------------------------------------------------------


def corrupt_blob(blob: bytes, kind: str, salt: str = "") -> bytes:
    """Deterministically damage *blob*: ``truncate`` or ``bitflip``.

    The damaged position derives from a CRC of *salt*, so the same
    (blob, kind, salt) always yields the same corruption — replayable
    like everything else in a fault plan.
    """
    if not blob:
        return blob
    marker = zlib.crc32(salt.encode("utf-8")) if salt else 0x9E3779B9
    if kind == "truncate":
        return blob[: len(blob) // 2]
    if kind == "bitflip":
        mutated = bytearray(blob)
        position = marker % len(mutated)
        mutated[position] ^= 1 << (marker % 8)
        return bytes(mutated)
    raise ValueError(f"unknown corruption kind {kind!r}")


def corrupt_store_files(
    directory: str, injector: FaultInjector
) -> List[str]:
    """Apply ``storage.segment_read`` faults to a saved store tree.

    Understands both store layouts. Walks the manifest in order and
    fires once per partition (key ``source/day``):

    * v2 segment stores: a firing partition damages its segment file
      (or removes it for kind ``missing``) — the honest blast radius,
      since partitions sharing a compacted run share its bytes;
    * legacy v1 stores: damages one deterministically-chosen column
      file, or removes the partition directory for ``missing``.

    Returns the paths affected.
    """
    manifest_path = os.path.join(directory, "manifest.json")
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    if isinstance(manifest, dict):
        return _corrupt_v2_store(directory, manifest, injector)
    affected: List[str] = []
    for entry in manifest:
        source, day = entry["source"], int(entry["day"])
        key = f"{source}/{day}"
        event = injector.fire("storage.segment_read", key=key)
        if event is None:
            continue
        partition_dir = os.path.join(directory, source, str(day))
        if event.kind == "missing":
            shutil.rmtree(partition_dir)
            affected.append(partition_dir)
            continue
        columns = sorted(entry["columns"])
        column = columns[zlib.crc32(key.encode("utf-8")) % len(columns)]
        path = os.path.join(partition_dir, f"{column}.col")
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(corrupt_blob(blob, event.kind, salt=key))
        affected.append(path)
    return affected


def _corrupt_v2_store(
    directory: str, manifest: dict, injector: FaultInjector
) -> List[str]:
    affected: List[str] = []
    for segment in manifest.get("segments", []):
        path = os.path.join(directory, segment["file"])
        for source, day, _rows in segment["partitions"]:
            key = f"{source}/{day}"
            event = injector.fire("storage.segment_read", key=key)
            if event is None:
                continue
            if event.kind == "missing":
                if os.path.exists(path):
                    os.remove(path)
                if path not in affected:
                    affected.append(path)
                continue
            if not os.path.exists(path):
                continue
            with open(path, "rb") as handle:
                blob = handle.read()
            with open(path, "wb") as handle:
                handle.write(corrupt_blob(blob, event.kind, salt=key))
            if path not in affected:
                affected.append(path)
    return affected


# -- partition feeds -----------------------------------------------------------


class PoisonedRow:
    """A partition row whose every field read fails — bit-rot made flesh."""

    __slots__ = ()

    def __getattr__(self, name: str) -> Any:
        raise ValueError(f"poisoned observation row (field {name!r})")


def _poison(partition: DayPartition) -> DayPartition:
    return DayPartition(
        source=partition.source,
        day=partition.day,
        zone_size=partition.zone_size,
        observations=[PoisonedRow()],  # type: ignore[list-item]
    )


class FaultyFeed:
    """Wraps a replay feed, mangling or withholding partitions.

    Kinds at site ``feed.partition`` (key: the source name):

    * ``transient`` — raise :class:`TransientFault`; a
      :class:`~repro.stream.feed.ResilientFeed` retry clears it (the
      injector draws a fresh decision per attempt);
    * ``delay`` — withhold the partition during :meth:`days` and re-emit
      it after the stream ends, exercising the engine's late-arrival
      reconciliation;
    * ``poison`` — replace the rows with unreadable ones, exercising the
      engine's scope quarantine.
    """

    site = "feed.partition"

    def __init__(self, inner: Any, injector: FaultInjector) -> None:
        self._inner = inner
        self._injector = injector

    def windows(self) -> Any:
        return self._inner.windows()

    def partition(self, source: str, day: int) -> DayPartition:
        partition = self._inner.partition(source, day)
        event = self._injector.fire(self.site, key=source)
        return self._mangle(partition, event)

    def days(
        self, start: Optional[int] = None, end: Optional[int] = None
    ) -> Iterator[DayPartition]:
        delayed: List[DayPartition] = []
        for partition in self._inner.days(start, end):
            event = self._injector.fire(self.site, key=partition.source)
            if event is not None and event.kind == "delay":
                delayed.append(partition)
                continue
            yield self._mangle(partition, event)
        for partition in delayed:
            yield partition

    def _mangle(
        self, partition: DayPartition, event: Optional[FaultEvent]
    ) -> DayPartition:
        if event is None:
            return partition
        if event.kind == "transient":
            raise TransientFault(
                self.site,
                "transient",
                key=f"{partition.source}/{partition.day}",
            )
        if event.kind == "poison":
            return _poison(partition)
        return partition


# -- the simulated network -----------------------------------------------------


class FaultyNetwork:
    """Wraps a :class:`SimulatedNetwork`, mangling exchanges.

    Kinds at site ``transport.query`` (key: the destination address):
    ``timeout`` (raise :class:`Timeout` before delivery), ``short_read``
    (truncate the response mid-record), ``malformed_rdata`` (damage
    response bytes past the header, so the header parses and the decoder
    trips inside a record).
    """

    site = "transport.query"

    def __init__(
        self, inner: SimulatedNetwork, injector: FaultInjector
    ) -> None:
        self._inner = inner
        self._injector = injector

    @property
    def stats(self) -> Any:
        return self._inner.stats

    def register(self, address: Any, handler: Any, stream_handler: Any = None) -> None:
        self._inner.register(address, handler, stream_handler)

    def unregister(self, address: Any) -> None:
        self._inner.unregister(address)

    def is_listening(self, address: Any) -> bool:
        return self._inner.is_listening(address)

    def query(self, address: Any, payload: bytes) -> bytes:
        event = self._injector.fire(self.site, key=str(address))
        if event is not None and event.kind == "timeout":
            raise Timeout(f"injected timeout to {address}")
        response = self._inner.query(address, payload)
        return self._mangle(response, event, str(address))

    def query_stream(self, address: Any, payload: bytes) -> bytes:
        event = self._injector.fire(self.site, key=str(address))
        if event is not None and event.kind == "timeout":
            raise Timeout(f"injected timeout to {address}")
        response = self._inner.query_stream(address, payload)
        return self._mangle(response, event, str(address))

    @staticmethod
    def _mangle(
        response: bytes, event: Optional[FaultEvent], salt: str
    ) -> bytes:
        if event is None:
            return response
        if event.kind == "short_read":
            return response[: max(1, len(response) // 2)]
        if event.kind == "malformed_rdata" and len(response) > 12:
            mutated = bytearray(response)
            position = 12 + zlib.crc32(salt.encode("utf-8")) % (
                len(mutated) - 12
            )
            mutated[position] = 0xFF
            return bytes(mutated)
        return response


# -- the prober ----------------------------------------------------------------


class FaultyProber:
    """Wraps :class:`FastProber` with observation faults + bounded retry.

    Site ``prober.observe`` fires once per attempt (key: the domain);
    each retry draws a fresh decision, so a spec's ``rate`` / ``times``
    controls whether the bounded retry recovers. Exhaustion raises
    :class:`PersistentFault` naming every scope the domain poisons —
    its TLD's detection scope plus ``alexa`` for ranked names — which
    the study pipeline converts into quarantines.
    """

    site = "prober.observe"

    def __init__(
        self,
        inner: FastProber,
        world: World,
        injector: FaultInjector,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    ) -> None:
        self._inner = inner
        self._world = world
        self._injector = injector
        self._policy = retry_policy
        self._alexa = frozenset(world.alexa_names)

    @property
    def observations_made(self) -> int:
        return self._inner.observations_made

    def observe(self, domain: str, day: int) -> Any:
        return self._inner.observe(domain, day)

    def observe_day(self, names: Sequence[str], day: int) -> Any:
        return self._inner.observe_day(names, day)

    def observe_segments(
        self, domain: str, horizon: Optional[int] = None
    ) -> List[ObservationSegment]:
        log = self._injector.log
        for attempt in range(1, self._policy.attempts + 1):
            event = self._injector.fire(self.site, key=domain)
            if event is None:
                if attempt > 1:
                    log.record_recovery(self.site)
                return self._inner.observe_segments(domain, horizon)
            if attempt < self._policy.attempts:
                log.record_retry(
                    self.site, self._policy.backoff_ticks(attempt)
                )
        raise PersistentFault(
            f"observation of {domain!r} failed after "
            f"{self._policy.attempts} attempts",
            scopes=self._scopes_of(domain),
        )

    def _scopes_of(self, domain: str) -> Tuple[str, ...]:
        scopes: List[str] = []
        timeline = self._world.domains.get(domain)
        if timeline is not None:
            scope = SCOPE_OF_SOURCE.get(timeline.tld)
            if scope is not None:
                scopes.append(scope)
        if domain in self._alexa:
            scopes.append("alexa")
        return tuple(dict.fromkeys(scopes))
