"""Deterministic fault injection and robustness instrumentation.

The measurement platform must "degrade, not die": missing zone files,
truncated storage segments, malformed DNS answers and dying workers are
routine at production scale, and a contiguous adoption time series
depends on surviving all of them. This package provides the harness that
proves it:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a seeded, serialisable
  schedule of faults (rate-, site- and kind-addressable), the
  :class:`FaultInjector` that evaluates it, and the structured
  :class:`FaultLog` counter surface exported alongside study results;
* :mod:`repro.faults.retry` — :class:`RetryPolicy`, the bounded
  deterministic-backoff policy shared by the prober and feed layers;
* :mod:`repro.faults.inject` — injection shims wrapping the real seams
  (storage segment reads, partition feeds, the simulated network, the
  prober, checkpoint bytes);
* :mod:`repro.faults.runtime` — the suppression scope used by retry
  paths so a re-executed shard cannot be re-killed by its own fault;
* :mod:`repro.faults.report` — scope-slicing helpers behind the chaos
  invariant (a faulted run must match the clean run byte-for-byte on
  every non-quarantined scope).

A failing chaotic run is replayable from its plan: serialise the plan
with :meth:`FaultPlan.to_json`, re-run with ``repro study --fault-plan``.
"""

from repro.faults.errors import (
    FaultError,
    InjectedFault,
    PersistentFault,
    TransientFault,
    WorkerCrash,
)
from repro.faults.runtime import fault_suppression, faults_suppressed
from repro.faults.retry import RetryPolicy
from repro.faults.plan import (
    FAULT_SITES,
    FaultEvent,
    FaultInjector,
    FaultLog,
    FaultPlan,
    FaultSpec,
)
from repro.faults.report import (
    SCOPE_EXPORT_KEYS,
    SCOPE_GROWTH_LABELS,
    SCOPE_OF_SOURCE,
    scope_digest,
    strip_scopes,
)
from repro.faults.inject import (
    FaultyFeed,
    FaultyNetwork,
    FaultyProber,
    corrupt_blob,
    corrupt_store_files,
)

__all__ = [
    "FAULT_SITES",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultLog",
    "FaultPlan",
    "FaultSpec",
    "FaultyFeed",
    "FaultyNetwork",
    "FaultyProber",
    "InjectedFault",
    "PersistentFault",
    "RetryPolicy",
    "SCOPE_EXPORT_KEYS",
    "SCOPE_GROWTH_LABELS",
    "SCOPE_OF_SOURCE",
    "TransientFault",
    "WorkerCrash",
    "corrupt_blob",
    "corrupt_store_files",
    "fault_suppression",
    "faults_suppressed",
    "scope_digest",
    "strip_scopes",
]
