"""Typed exceptions for injected faults.

Injected faults are first-class, typed errors so hardened code can react
by *policy* — retry a transient, quarantine on a persistent, re-execute
a crashed shard — instead of pattern-matching strings. Production code
never raises these itself; only the injection shims do.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, Tuple


class FaultError(Exception):
    """Base class for every fault-harness error."""


class InjectedFault(FaultError):
    """An artificial failure produced by a :class:`FaultInjector`.

    Carries the site and kind so retry layers and logs can attribute it.
    """

    def __init__(self, site: str, kind: str, key: str = "") -> None:
        detail = f" [{key}]" if key else ""
        super().__init__(f"injected {kind} fault at {site}{detail}")
        self.site = site
        self.kind = kind
        self.key = key

    def __reduce__(self) -> Tuple[Callable[..., Any], Tuple[Any, ...]]:
        # Exception pickling replays the constructor with ``args`` (the
        # formatted message) — wrong arity here. A worker-raised crash
        # must survive the trip back through the process pool intact.
        return (type(self), (self.site, self.kind, self.key))


class TransientFault(InjectedFault):
    """A fault that a bounded retry is expected to clear."""


class PersistentFault(FaultError):
    """A fault that survived every retry attempt.

    *scopes* names the detection scopes the failure poisons; the caller
    quarantines them instead of aborting the run.
    """

    def __init__(
        self, message: str, scopes: Sequence[str] = ()
    ) -> None:
        super().__init__(message)
        self.scopes: Tuple[str, ...] = tuple(scopes)

    def __reduce__(self) -> Tuple[Callable[..., Any], Tuple[Any, ...]]:
        # Without this, unpickling rebuilds from the message alone and
        # silently drops the poisoned scopes.
        return (type(self), (str(self), self.scopes))


class WorkerCrash(InjectedFault):
    """A worker process dying mid-shard (simulated).

    ``shard_retryable`` is the duck-typed marker
    :class:`~repro.parallel.executor.ShardedExecutor` looks for when
    deciding to re-execute the shard in the parent process.
    """

    shard_retryable = True
