"""Fault plans: seeded, serialisable schedules of injected failures.

A :class:`FaultPlan` is the reproducibility unit of chaos testing: a
seed plus a list of :class:`FaultSpec` entries, each addressing a
**site** (a named seam in the pipeline, see :data:`FAULT_SITES`), a
**kind** (what goes wrong there), a **rate**, and optional **keys**
(only fire for these shard indexes / sources / scopes) and **times** (at
most this many firings). Serialising the plan to JSON makes a failing
chaotic run replayable: same plan, same decisions, same faults.

Decision determinism: a spec's firing decision for a call is a pure hash
of ``(plan seed, spec identity, call key, per-key occurrence number)`` —
no shared RNG stream — so decisions are independent of global call
order. A domain observed by shard 3 of a parallel run draws exactly what
it would have drawn in a serial run.

The :class:`FaultLog` is the "visibly degraded" surface: a structured
counter record of what was injected, retried, recovered, dropped and
quarantined, exported alongside study results so a degraded run can
never masquerade as a clean one.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.faults.runtime import faults_suppressed

#: Every injection seam the harness knows, with the kinds it supports.
#: site → (description, (kind, ...)).
FAULT_SITES: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "storage.segment_read": (
        "columnar segment reads from disk (ColumnStore.load)",
        ("truncate", "bitflip", "missing"),
    ),
    "feed.partition": (
        "daily (source, day) partition production",
        ("transient", "delay", "poison"),
    ),
    "checkpoint.save": (
        "stream checkpoint writes",
        ("torn_write",),
    ),
    "checkpoint.load": (
        "stream checkpoint reads",
        ("corrupt",),
    ),
    "transport.query": (
        "datagram/stream exchanges on the simulated network",
        ("timeout", "short_read", "malformed_rdata"),
    ),
    "prober.observe": (
        "per-domain observation during measurement",
        ("transient",),
    ),
    "study.detect": (
        "per-scope detection during a full study run",
        ("poison",),
    ),
    "parallel.executor": (
        "sharded worker execution",
        ("worker_crash",),
    ),
}


@dataclass(frozen=True)
class FaultSpec:
    """One addressable fault source within a plan."""

    site: str
    kind: str
    rate: float = 1.0
    #: Only fire when the call's key is one of these (None: any key).
    keys: Optional[Tuple[str, ...]] = None
    #: Fire at most this many times per injector (None: unbounded).
    times: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; "
                f"known: {sorted(FAULT_SITES)}"
            )
        _, kinds = FAULT_SITES[self.site]
        if self.kind not in kinds:
            raise ValueError(
                f"site {self.site!r} does not support kind {self.kind!r}; "
                f"supported: {list(kinds)}"
            )
        if not 0.0 < self.rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")
        if self.keys is not None:
            object.__setattr__(self, "keys", tuple(self.keys))
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1")

    def to_dict(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "kind": self.kind,
            "rate": self.rate,
            "keys": list(self.keys) if self.keys is not None else None,
            "times": self.times,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSpec":
        keys = payload.get("keys")
        return cls(
            site=payload["site"],
            kind=payload["kind"],
            rate=float(payload.get("rate", 1.0)),
            keys=tuple(keys) if keys is not None else None,
            times=payload.get("times"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serialisable fault schedule."""

    seed: int
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            seed=int(payload["seed"]),
            specs=tuple(
                FaultSpec.from_dict(spec)
                for spec in payload.get("specs", [])
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def injector(self, log: Optional["FaultLog"] = None) -> "FaultInjector":
        return FaultInjector(self, log=log)


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault decision."""

    site: str
    kind: str
    key: str = ""


def _spec_seed(plan_seed: int, spec: FaultSpec, index: int) -> int:
    """A stable per-spec seed for the decision hash."""
    tag = f"{spec.site}\x1f{spec.kind}\x1f{index}".encode("utf-8")
    return (plan_seed & 0xFFFFFFFF) ^ zlib.crc32(tag)


def _draw(spec_seed: int, key: str, occurrence: int) -> float:
    """A uniform [0, 1) decision for one (spec, key, occurrence) call."""
    digest = zlib.crc32(
        f"{key}\x1f{occurrence}".encode("utf-8"), spec_seed
    )
    return (digest & 0xFFFFFF) / float(1 << 24)


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at run time.

    Call :meth:`fire` at a site with the call's key; the first matching
    spec whose decision hash lands below its rate produces a
    :class:`FaultEvent` (and a log entry). While a
    :func:`fault_suppression` scope is active the injector never fires —
    that is how retry paths stay survivable. ``times`` bounds are
    per-injector (per-process): a plan shipped to worker processes
    applies its limits per worker.
    """

    def __init__(
        self, plan: FaultPlan, log: Optional["FaultLog"] = None
    ) -> None:
        self.plan = plan
        self.log = log if log is not None else FaultLog()
        self._seeds: List[int] = [
            _spec_seed(plan.seed, spec, index)
            for index, spec in enumerate(plan.specs)
        ]
        #: per spec: key → number of calls asked so far.
        self._asked: List[Dict[str, int]] = [{} for _ in plan.specs]
        self._fired: List[int] = [0] * len(plan.specs)

    def fire(self, site: str, key: str = "") -> Optional[FaultEvent]:
        """The fault (if any) this call at *site* suffers."""
        if faults_suppressed():
            return None
        for index, spec in enumerate(self.plan.specs):
            if spec.site != site:
                continue
            if spec.keys is not None and key not in spec.keys:
                continue
            asked = self._asked[index]
            occurrence = asked.get(key, 0)
            asked[key] = occurrence + 1
            if spec.times is not None and self._fired[index] >= spec.times:
                continue
            if (
                spec.rate < 1.0
                and _draw(self._seeds[index], key, occurrence) >= spec.rate
            ):
                continue
            self._fired[index] += 1
            event = FaultEvent(site=site, kind=spec.kind, key=key)
            self.log.record_injection(event)
            return event
        return None

    def fired_counts(self) -> List[int]:
        return list(self._fired)


class FaultLog:
    """Structured counters describing how degraded a run was.

    Serialises canonically (sorted keys) so it can ride along in
    ``series.json`` exports, and merges across worker processes.
    """

    def __init__(self) -> None:
        #: "site/kind" → number of injected faults.
        self._injected: Dict[str, int] = {}
        #: site → retries spent recovering from faults there.
        self._retries: Dict[str, int] = {}
        #: site → calls that recovered after at least one retry.
        self._recovered: Dict[str, int] = {}
        #: site → items dropped / skipped after retries were exhausted.
        self._dropped: Dict[str, int] = {}
        #: scope → human-readable quarantine reason.
        self._quarantined: Dict[str, str] = {}
        #: Released quarantines (scope names, in release order).
        self._released: List[str] = []
        #: Logical backoff ticks accrued by deterministic backoff.
        self._backoff_ticks: int = 0
        #: Shards re-executed in the parent after a worker death.
        self._shards_retried: int = 0

    # -- recording ----------------------------------------------------------

    def record_injection(self, event: FaultEvent) -> None:
        label = f"{event.site}/{event.kind}"
        self._injected[label] = self._injected.get(label, 0) + 1

    def record_retry(self, site: str, backoff_ticks: int = 0) -> None:
        self._retries[site] = self._retries.get(site, 0) + 1
        self._backoff_ticks += backoff_ticks

    def record_recovery(self, site: str) -> None:
        self._recovered[site] = self._recovered.get(site, 0) + 1

    def record_drop(self, site: str, count: int = 1) -> None:
        self._dropped[site] = self._dropped.get(site, 0) + count

    def record_quarantine(self, scope: str, reason: str) -> None:
        self._quarantined.setdefault(scope, reason)

    def record_release(self, scope: str) -> None:
        self._quarantined.pop(scope, None)
        self._released.append(scope)

    def record_shard_retry(self, count: int = 1) -> None:
        self._shards_retried += count

    # -- queries ------------------------------------------------------------

    @property
    def quarantined_scopes(self) -> Dict[str, str]:
        return dict(sorted(self._quarantined.items()))

    @property
    def backoff_ticks(self) -> int:
        return self._backoff_ticks

    @property
    def shards_retried(self) -> int:
        return self._shards_retried

    def injections(self) -> int:
        return sum(self._injected.values())

    def is_clean(self) -> bool:
        """True when nothing was injected, dropped or quarantined."""
        return (
            not self._injected
            and not self._dropped
            and not self._quarantined
            and not self._released
            and self._shards_retried == 0
        )

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "injected": dict(sorted(self._injected.items())),
            "retries": dict(sorted(self._retries.items())),
            "recovered": dict(sorted(self._recovered.items())),
            "dropped": dict(sorted(self._dropped.items())),
            "quarantined": dict(sorted(self._quarantined.items())),
            "released": list(self._released),
            "backoff_ticks": self._backoff_ticks,
            "shards_retried": self._shards_retried,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultLog":
        log = cls()
        log._injected = dict(sorted(payload.get("injected", {}).items()))
        log._retries = dict(sorted(payload.get("retries", {}).items()))
        log._recovered = dict(sorted(payload.get("recovered", {}).items()))
        log._dropped = dict(sorted(payload.get("dropped", {}).items()))
        log._quarantined = dict(
            sorted(payload.get("quarantined", {}).items())
        )
        log._released = list(payload.get("released", []))
        log._backoff_ticks = int(payload.get("backoff_ticks", 0))
        log._shards_retried = int(payload.get("shards_retried", 0))
        return log

    def absorb(self, other: "FaultLog") -> None:
        """Fold *other*'s counters into this log (worker → parent)."""
        for label, count in sorted(other._injected.items()):
            self._injected[label] = self._injected.get(label, 0) + count
        for site, count in sorted(other._retries.items()):
            self._retries[site] = self._retries.get(site, 0) + count
        for site, count in sorted(other._recovered.items()):
            self._recovered[site] = self._recovered.get(site, 0) + count
        for site, count in sorted(other._dropped.items()):
            self._dropped[site] = self._dropped.get(site, 0) + count
        for scope, reason in sorted(other._quarantined.items()):
            self._quarantined.setdefault(scope, reason)
        self._released.extend(other._released)
        self._backoff_ticks += other._backoff_ticks
        self._shards_retried += other._shards_retried

    @classmethod
    def merge(cls, logs: Sequence["FaultLog"]) -> "FaultLog":
        merged = cls()
        for log in logs:
            merged.absorb(log)
        return merged
