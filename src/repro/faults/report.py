"""Scope slicing for the chaos invariant.

The invariant under test: a faulted study run must complete and be
**byte-identical** to the clean run on every scope that was not
quarantined. A *scope* is one of the study's detection universes —
``"gtld"`` (com/net/org), ``"nl"``, ``"alexa"`` — and quarantining one
means its derived export keys are forfeit while everything else must
still match exactly.

:func:`strip_scopes` removes a set of scopes' keys (plus the fault
bookkeeping itself) from a ``study_to_dict`` payload; comparing the
stripped clean and faulted payloads — or their :func:`scope_digest`
hashes — is how the chaos tests assert the invariant.
"""

from __future__ import annotations

import copy
import hashlib
import json
from typing import Dict, Iterable, Mapping, Tuple

#: measurement source → detection scope.
SCOPE_OF_SOURCE: Dict[str, str] = {
    "com": "gtld",
    "net": "gtld",
    "org": "gtld",
    "nl": "nl",
    "alexa": "alexa",
}

#: scope → top-level ``study_to_dict`` keys derived from that scope's
#: detection. Keys absent here (zone_sizes, namespace_distribution,
#: dataset, horizon) derive from the world alone and must survive any
#: quarantine untouched.
SCOPE_EXPORT_KEYS: Dict[str, Tuple[str, ...]] = {
    "gtld": (
        "any_use",
        "providers",
        "dps_distribution",
        "flux",
        "peaks",
        "anomalies",
        "exposure",
    ),
    "nl": (),
    "alexa": (),
}

#: scope → labels inside the ``growth`` mapping owned by that scope.
SCOPE_GROWTH_LABELS: Dict[str, Tuple[str, ...]] = {
    "gtld": ("DPS adoption", "Overall expansion"),
    "nl": ("DPS adoption (.nl)", "Overall expansion (.nl)"),
    "alexa": ("DPS adoption (Alexa)",),
}

#: fault bookkeeping keys, always stripped before comparison: a clean
#: run has none, a faulted run reports them, and the invariant is about
#: the *measurements*, not the telemetry.
FAULT_BOOKKEEPING_KEYS: Tuple[str, ...] = ("faults", "quarantined")


def strip_scopes(
    payload: Mapping[str, object], scopes: Iterable[str]
) -> Dict[str, object]:
    """A deep copy of *payload* with *scopes*' derived keys removed.

    Fault bookkeeping keys are always removed. Unknown scope names are
    rejected so a typo cannot silently weaken the invariant.
    """
    scope_set = set(scopes)
    unknown = scope_set - set(SCOPE_EXPORT_KEYS)
    if unknown:
        raise ValueError(f"unknown scopes: {sorted(unknown)}")
    stripped: Dict[str, object] = copy.deepcopy(dict(payload))
    for key in FAULT_BOOKKEEPING_KEYS:
        stripped.pop(key, None)
    for scope in sorted(scope_set):
        for key in SCOPE_EXPORT_KEYS[scope]:
            stripped.pop(key, None)
        growth = stripped.get("growth")
        if isinstance(growth, dict):
            for label in SCOPE_GROWTH_LABELS[scope]:
                growth.pop(label, None)
    return stripped


def scope_digest(
    payload: Mapping[str, object], exclude_scopes: Iterable[str] = ()
) -> str:
    """A canonical SHA-256 over *payload* minus *exclude_scopes*.

    Two runs satisfy the chaos invariant iff their digests — excluding
    the union of their quarantined scopes — are equal.
    """
    stripped = strip_scopes(payload, exclude_scopes)
    canonical = json.dumps(stripped, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
