"""Bounded retry with deterministic backoff.

The platform's retry discipline (docs/ROBUSTNESS.md): every retry loop
is **bounded** (a poisoned input must escalate, not spin) and its
backoff is **deterministic** — a geometric schedule of logical ticks
derived only from the attempt number, never from the wall clock, so a
replayed run retries identically. Inside the simulation a tick is
accounting, not sleeping; a live deployment would map ticks to seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class RetryPolicy:
    """How often to retry and how long to (logically) back off.

    ``attempts`` counts total tries, so ``attempts=3`` means one initial
    try plus two retries. The backoff before retry *n* (1-based) is
    ``backoff_base * backoff_factor ** (n - 1)`` ticks.
    """

    attempts: int = 3
    backoff_base: int = 1
    backoff_factor: int = 2

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be non-negative and growing")

    def backoff_ticks(self, retry_number: int) -> int:
        """Ticks to back off before 1-based retry *retry_number*."""
        if retry_number < 1:
            raise ValueError("retry_number is 1-based")
        return self.backoff_base * self.backoff_factor ** (retry_number - 1)

    def schedule(self) -> List[int]:
        """The full backoff schedule, one entry per possible retry."""
        return [
            self.backoff_ticks(retry)
            for retry in range(1, self.attempts)
        ]

    def total_backoff(self) -> int:
        """Ticks spent if every attempt fails."""
        return sum(self.schedule())


#: The default policy applied by hardened layers when none is given.
DEFAULT_RETRY_POLICY = RetryPolicy(attempts=3, backoff_base=1, backoff_factor=2)
