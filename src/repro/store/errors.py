"""The storage failure type shared by the v1 and v2 read paths."""

from __future__ import annotations


class StorageError(Exception):
    """A stored partition is missing, truncated, or fails its checksum.

    Every load-path failure surfaces as this type — never a raw
    ``struct.error`` / ``zlib.error`` / ``JSONDecodeError`` / ``OSError``
    leaking encoding internals — so callers can degrade by policy (skip
    the partition, quarantine its scope) instead of dying on a damaged
    segment.
    """
