"""The structural store interface feeds and the study pipeline accept.

Both :class:`repro.measurement.storage.ColumnStore` (in-memory, eager)
and :class:`repro.store.store.SegmentStore` (on-disk, lazy, pruned)
satisfy this protocol, so everything downstream of landing — replay
feeds, whole-history detection, Table 1 accounting — is store-agnostic.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Protocol, Tuple

from repro.batch.batch import BatchBuilder, ObservationBatch
from repro.measurement.snapshot import DomainObservation
from repro.store.stats import PartitionStats


class ObservationStore(Protocol):
    """Reading surface shared by the v1 and v2 stores."""

    #: (source, day, reason) for partitions dropped by lenient reads.
    skipped_partitions: List[Tuple[str, int, str]]

    def partitions(self) -> List[Tuple[str, int]]:
        ...

    def rows(self, source: str, day: int) -> Iterator[DomainObservation]:
        ...

    def row_count(self, source: str, day: int) -> int:
        ...

    def batch(
        self,
        source: str,
        day: int,
        builder: Optional[BatchBuilder] = None,
    ) -> ObservationBatch:
        ...

    def batches(
        self, builder: Optional[BatchBuilder] = None
    ) -> Iterator[Tuple[str, int, ObservationBatch]]:
        ...

    def partition_stats(self, source: str, day: int) -> PartitionStats:
        ...

    def total_stats(
        self, source: Optional[str] = None
    ) -> PartitionStats:
        ...
