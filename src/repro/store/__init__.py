"""The v2 segment store: binary column segments with an LSM flavor.

``repro.store`` replaces the zlib-JSON partition files of the original
:mod:`repro.measurement.storage` head with a real segment store:

* :mod:`repro.store.codecs` — per-column page codecs (dictionary pages
  with raw or run-length index streams, delta varints for int lists,
  zlib-of-page fallback), chosen adaptively per column.
* :mod:`repro.store.segment` — the versioned binary segment format
  (struct-packed header and directory, per-column pages, CRC-32
  footer), written via atomic rename and read through ``mmap`` so
  column bytes slice zero-copy out of the page cache.
* :mod:`repro.store.manifest` — the store manifest: per-segment
  generation, day range, and source set, enabling partition pruning by
  day window and source before any segment byte is touched.
* :mod:`repro.store.store` — :class:`SegmentStore`, the on-disk
  counterpart of :class:`repro.measurement.storage.ColumnStore`, with
  tiered compaction of day segments into multi-day runs.
* :mod:`repro.store.migrate` — v1 zlib-JSON → v2 segment conversion.

See ``docs/STORAGE.md`` for the byte-level format specification.
"""

from repro.store.errors import StorageError
from repro.store.manifest import SegmentMeta, StoreManifest, manifest_format
from repro.store.protocols import ObservationStore
from repro.store.segment import (
    SEGMENT_SUFFIX,
    SegmentReader,
    build_segment,
    write_segment,
)
from repro.store.slices import ManifestSlice
from repro.store.stats import PartitionStats
from repro.store.store import SegmentStore

__all__ = [
    "ManifestSlice",
    "ObservationStore",
    "PartitionStats",
    "SEGMENT_SUFFIX",
    "SegmentMeta",
    "SegmentReader",
    "SegmentStore",
    "StorageError",
    "StoreManifest",
    "build_segment",
    "manifest_format",
    "write_segment",
]
