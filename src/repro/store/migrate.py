"""v1 → v2 store migration (the ``repro store migrate`` backend).

A v1 store directory holds zlib-JSON column files behind a list-shaped
manifest; migration loads it through the legacy decoder and lands every
partition as a generation-0 v2 segment, optionally compacting the
result into multi-day runs. The loader is the dual-format
:meth:`repro.measurement.storage.ColumnStore.load`, so migrating an
already-v2 store is a harmless rewrite.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.store.store import SegmentStore


@dataclass
class MigrationReport:
    """What a store migration did."""

    partitions: int
    rows: int
    source_bytes: int
    target_bytes: int
    segments: int
    skipped: List[Tuple[str, int, str]] = field(default_factory=list)


def directory_bytes(directory: str) -> int:
    """Total file bytes under *directory* (the honest on-disk size)."""
    total = 0
    for root, _dirs, files in os.walk(directory):
        for name in files:
            total += os.path.getsize(os.path.join(root, name))
    return total


def migrate_store(
    source_dir: str,
    target_dir: str,
    on_error: str = "raise",
    compact_fanout: Optional[int] = None,
) -> MigrationReport:
    """Convert the store at *source_dir* into v2 segments at *target_dir*.

    With ``on_error="skip"`` damaged v1 partitions are dropped (and
    reported) instead of failing the migration. *compact_fanout*, when
    given, runs tiered compaction on the result so a long day-per-file
    history lands as a few multi-day runs.
    """
    # Imported lazily: measurement.storage imports repro.store, and this
    # module must stay importable from the package __init__.
    from repro.measurement.storage import ColumnStore

    legacy = ColumnStore.load(source_dir, on_error=on_error)
    target = SegmentStore(target_dir, create=True)
    rows = 0
    for source, day in legacy.partitions():
        target.append_columns(
            source, day, legacy.partition_columns(source, day)
        )
        rows += legacy.row_count(source, day)
    if compact_fanout is not None:
        target.compact(fanout=compact_fanout)
    report = MigrationReport(
        partitions=len(legacy.partitions()),
        rows=rows,
        source_bytes=directory_bytes(source_dir),
        target_bytes=directory_bytes(target_dir),
        segments=len(target.manifest.segments),
        skipped=list(legacy.skipped_partitions),
    )
    target.close()
    return report
