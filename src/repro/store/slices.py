"""Picklable read plans over a :class:`SegmentStore` manifest.

A :class:`ManifestSlice` is the unit of work a distributed pass hands a
worker: the store directory, the exact ``(source, day)`` partitions to
read, and optionally a domain hash shard to keep. It carries no open
file handles or mmap views — only strings and integers — so it crosses
any process boundary as a tiny pickle; the worker re-opens the store
from the manifest on its side and reads partition by partition from
disk.

Two slicing modes (see :meth:`SegmentStore.manifest_slices`):

* ``by="partitions"`` — contiguous partition runs, for commutative
  folds like the sketch rebuild where any partition subset can be
  processed independently;
* ``by="domains"`` — every slice covers *all* selected partitions but
  keeps only the rows of its domain hash shard. This is the plan for
  whole-history passes like detection, whose per-domain contract needs
  the complete daily history of each domain: each worker scans the
  history once and materialises only ``1/shard_count`` of its rows,
  never a whole-history batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.batch.batch import BatchBuilder, ObservationBatch

if TYPE_CHECKING:
    from repro.store.store import SegmentStore


@dataclass(frozen=True)
class ManifestSlice:
    """One worker's read plan: partitions plus an optional domain shard."""

    directory: str
    #: ``(source, day)`` partitions this slice reads, in sorted order.
    partitions: Tuple[Tuple[str, int], ...]
    #: ``(shard_index, shard_count)`` — keep only domains hashing to
    #: this shard; ``None`` keeps every row of the partitions.
    domain_shard: Optional[Tuple[int, int]] = None
    on_error: str = "raise"

    def open(self) -> "SegmentStore":
        """Open the slice's store (manifest parse only, reads lazy)."""
        from repro.store.store import SegmentStore

        return SegmentStore(self.directory, on_error=self.on_error)

    def load_batch(self) -> ObservationBatch:
        """Fold the slice into one batch, partition by partition.

        Partitions are read from disk one at a time and immediately
        filtered to the slice's domain shard, so peak row memory is one
        partition plus the slice's own rows — never the whole history.
        Pools are shared across partitions (translate-once interning),
        matching the serial whole-history concatenation byte for byte
        on the rows the slice keeps.
        """
        # Imported here: the canonical shard function lives above this
        # layer, in repro.parallel, which must stay importable without
        # the store (and vice versa).
        from repro.parallel.sharding import shard_of

        store = self.open()
        try:
            builder = BatchBuilder()
            parts: List[ObservationBatch] = []
            #: domain pool id -> belongs to this shard (ids are stable
            #: across partitions because the pools are shared).
            keep_by_id: Dict[int, bool] = {}
            for source, day in self.partitions:
                batch = store.batch(source, day, builder=builder)
                if self.domain_shard is None:
                    parts.append(batch)
                    continue
                index, count = self.domain_shard
                names = batch.names
                kept: List[int] = []
                for row, domain_id in enumerate(batch.domains):
                    keep = keep_by_id.get(domain_id)
                    if keep is None:
                        keep = (
                            shard_of(names.value(domain_id), count)
                            == index
                        )
                        keep_by_id[domain_id] = keep
                    if keep:
                        kept.append(row)
                if kept:
                    parts.append(batch.take(kept))
            if not parts:
                return builder.new_batch()
            return ObservationBatch.concat(parts)
        finally:
            store.close()
