"""The v2 store manifest: segment metadata enabling partition pruning.

``manifest.json`` (format 2) describes every live segment file — its
compaction generation, day range, source set, and the exact partitions
inside — so a reader can answer "which segments could hold com days
40–60?" from the manifest alone and never open (or fault in a single
page of) the cold ones. The v1 manifest was a plain JSON list of
partition entries; :func:`manifest_format` tells the two apart so the
dual-format load path can keep old stores readable.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.store.errors import StorageError

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = 2


@dataclass
class SegmentMeta:
    """Manifest entry for one segment file."""

    file: str
    generation: int
    day_min: int
    day_max: int
    sources: Tuple[str, ...]
    rows: int
    bytes: int
    #: ``(source, day, rows)`` for every partition, in file order.
    partitions: List[Tuple[str, int, int]] = field(default_factory=list)

    def covers(
        self,
        sources: Optional[Sequence[str]] = None,
        start: Optional[int] = None,
        end: Optional[int] = None,
    ) -> bool:
        """Whether the segment can hold partitions in the window."""
        if start is not None and self.day_max < start:
            return False
        if end is not None and self.day_min > end:
            return False
        if sources is not None and not set(sources) & set(self.sources):
            return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "file": self.file,
            "generation": self.generation,
            "day_min": self.day_min,
            "day_max": self.day_max,
            "sources": list(self.sources),
            "rows": self.rows,
            "bytes": self.bytes,
            "partitions": [list(entry) for entry in self.partitions],
        }

    @classmethod
    def from_dict(cls, entry: Dict[str, Any]) -> "SegmentMeta":
        try:
            return cls(
                file=str(entry["file"]),
                generation=int(entry["generation"]),
                day_min=int(entry["day_min"]),
                day_max=int(entry["day_max"]),
                sources=tuple(str(s) for s in entry["sources"]),
                rows=int(entry["rows"]),
                bytes=int(entry["bytes"]),
                partitions=[
                    (str(source), int(day), int(rows))
                    for source, day, rows in entry["partitions"]
                ],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(
                f"malformed manifest segment entry: {exc}"
            ) from exc

    @classmethod
    def describe(
        cls,
        file: str,
        generation: int,
        size: int,
        partitions: Sequence[Tuple[str, int, int]],
    ) -> "SegmentMeta":
        """Derive the min-max metadata from a partition list."""
        if not partitions:
            raise StorageError("segment must hold at least one partition")
        days = [day for _, day, _ in partitions]
        return cls(
            file=file,
            generation=generation,
            day_min=min(days),
            day_max=max(days),
            sources=tuple(sorted({source for source, _, _ in partitions})),
            rows=sum(rows for _, _, rows in partitions),
            bytes=size,
            partitions=list(partitions),
        )


def manifest_format(payload: Any) -> int:
    """The manifest format of a decoded ``manifest.json`` payload:
    1 for the legacy partition list, 2 for the segment manifest."""
    if isinstance(payload, list):
        return 1
    if (
        isinstance(payload, dict)
        and payload.get("format") == MANIFEST_FORMAT
    ):
        return MANIFEST_FORMAT
    raise StorageError("unrecognised manifest format")


@dataclass
class StoreManifest:
    """The live segment set of one store directory."""

    segments: List[SegmentMeta] = field(default_factory=list)

    def select(
        self,
        sources: Optional[Sequence[str]] = None,
        start: Optional[int] = None,
        end: Optional[int] = None,
    ) -> List[SegmentMeta]:
        """Segments that may hold partitions in the window — the
        pruning step: everything else is never opened."""
        return [
            meta
            for meta in self.segments
            if meta.covers(sources=sources, start=start, end=end)
        ]

    def partitions(
        self,
        sources: Optional[Sequence[str]] = None,
        start: Optional[int] = None,
        end: Optional[int] = None,
    ) -> List[Tuple[str, int]]:
        """Distinct ``(source, day)`` pairs in the window, sorted."""
        wanted = set(sources) if sources is not None else None
        found = {
            (source, day)
            for meta in self.select(sources=sources, start=start, end=end)
            for source, day, _ in meta.partitions
            if (wanted is None or source in wanted)
            and (start is None or day >= start)
            and (end is None or day <= end)
        }
        return sorted(found)

    def row_count(self, source: str, day: int) -> int:
        return sum(
            rows
            for meta in self.select(sources=(source,), start=day, end=day)
            for entry_source, entry_day, rows in meta.partitions
            if entry_source == source and entry_day == day
        )

    def next_sequence(self) -> int:
        """The next free segment file sequence number."""
        highest = -1
        for meta in self.segments:
            stem = os.path.basename(meta.file).split(".")[0]
            tail = stem.rsplit("-", 1)[-1]
            if tail.isdigit():
                highest = max(highest, int(tail))
        return highest + 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": MANIFEST_FORMAT,
            "segments": [meta.to_dict() for meta in self.segments],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StoreManifest":
        segments = payload.get("segments")
        if not isinstance(segments, list):
            raise StorageError("manifest 'segments' must be a list")
        return cls(
            segments=[SegmentMeta.from_dict(entry) for entry in segments]
        )

    def save(self, directory: str) -> str:
        """Atomically write ``manifest.json``; returns its path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, MANIFEST_NAME)
        temporary = path + ".tmp"
        with open(temporary, "w") as handle:
            json.dump(self.to_dict(), handle, indent=1)
        os.replace(temporary, path)
        return path

    @classmethod
    def load(cls, directory: str) -> "StoreManifest":
        payload = load_manifest_payload(directory)
        if manifest_format(payload) != MANIFEST_FORMAT:
            raise StorageError(
                f"{directory} holds a v1 store; run `repro store migrate` "
                f"(or load it with ColumnStore.load, which reads both)"
            )
        return cls.from_dict(payload)


def load_manifest_payload(directory: str) -> Any:
    """The decoded ``manifest.json`` of *directory*, any format."""
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path) as handle:
            return json.load(handle)
    except OSError as exc:
        raise StorageError(f"cannot read manifest: {exc}") from exc
    except ValueError as exc:
        raise StorageError(f"corrupt manifest: {exc}") from exc
