"""Partition size accounting shared by the v1 and v2 stores."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PartitionStats:
    """Size accounting for one stored partition.

    ``encoded_bytes`` is the partition's actual on-disk footprint in the
    v2 segment format — header, dictionary pages, directory entry, and
    footer for a standalone segment; the partition's page bytes when it
    shares a multi-partition compacted run — so the Table 1
    measured-vs-extrapolated storage comparison reports what the store
    really writes, not a legacy encoding.
    """

    source: str
    day: int
    rows: int
    data_points: int
    encoded_bytes: int
