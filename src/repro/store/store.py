""":class:`SegmentStore` — the on-disk, LSM-flavored observation store.

The store is a directory: ``manifest.json`` plus ``segments/*.rseg``
files (:mod:`repro.store.segment`). Appends write fresh generation-0
segments and update the manifest atomically; :meth:`SegmentStore.compact`
merges a generation's segments into one multi-day run of the next
generation, so read amplification stays bounded as history grows while
the manifest's per-segment day ranges keep partition pruning exact.

Reads are lazy and zero-copy: opening the store parses only the
manifest; opening a segment maps it and parses only its directory; and
:meth:`SegmentStore.batch` interns each *distinct* dictionary entry
once, mapping rows through the page's index stream — no JSON, no
pickle, no per-row interning anywhere on the path from disk bytes to
:class:`~repro.batch.batch.ObservationBatch` columns.
"""

from __future__ import annotations

import os
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.batch.batch import BatchBuilder, ObservationBatch
from repro.measurement.snapshot import (
    DomainObservation,
    MEASUREMENTS_PER_DOMAIN_DAY,
)
from repro.store import codecs
from repro.store.codecs import COLUMN_ORDER
from repro.store.errors import StorageError
from repro.store.manifest import SegmentMeta, StoreManifest
from repro.store.slices import ManifestSlice
from repro.store.segment import (
    SEGMENT_SUFFIX,
    PartitionRef,
    SegmentReader,
    write_segment,
)
from repro.store.stats import PartitionStats

#: Subdirectory of the store holding segment files.
SEGMENTS_DIR = "segments"

#: Columns as stored: plain Python cell lists, one list per column.
Columns = Dict[str, List[Any]]


def observation_columns(
    observations: Sequence[DomainObservation],
) -> Columns:
    """Shred row-shaped observations into storage column lists."""
    columns: Columns = {name: [] for name in COLUMN_ORDER}
    for observation in observations:
        columns["domain"].append(observation.domain)
        columns["tld"].append(observation.tld)
        columns["ns_names"].append(list(observation.ns_names))
        columns["apex_addrs"].append(list(observation.apex_addrs))
        columns["www_cnames"].append(list(observation.www_cnames))
        columns["www_addrs"].append(list(observation.www_addrs))
        columns["apex_addrs6"].append(list(observation.apex_addrs6))
        columns["www_addrs6"].append(list(observation.www_addrs6))
        columns["asns"].append(sorted(observation.asns))
    return columns


def batch_columns(batch: ObservationBatch) -> Columns:
    """Shred a columnar batch into storage column lists.

    Value-identical to ``observation_columns(batch.rows())`` without
    boxing a row per observation: each distinct pool id is resolved to
    its text once, rows map through plain list lookups.
    """
    names = batch.names
    addresses = batch.addresses
    name_texts = [names.value(i) for i in range(len(names))]
    address_texts = [addresses.text(i) for i in range(len(addresses))]
    return {
        "domain": [name_texts[i] for i in batch.domains],
        "tld": [name_texts[i] for i in batch.tlds],
        "ns_names": [
            [name_texts[i] for i in ids] for ids in batch.ns_names
        ],
        "apex_addrs": [
            [address_texts[i] for i in ids] for ids in batch.apex_addrs
        ],
        "www_cnames": [
            [name_texts[i] for i in ids] for ids in batch.www_cnames
        ],
        "www_addrs": [
            [address_texts[i] for i in ids] for ids in batch.www_addrs
        ],
        "apex_addrs6": [
            [address_texts[i] for i in ids] for ids in batch.apex_addrs6
        ],
        "www_addrs6": [
            [address_texts[i] for i in ids] for ids in batch.www_addrs6
        ],
        "asns": [list(asns) for asns in batch.asns],
    }


class SegmentStore:
    """A directory of binary column segments behind a manifest.

    Exposes the same reading surface as
    :class:`repro.measurement.storage.ColumnStore` — ``partitions()``,
    ``rows()``, ``row_count()``, ``batch()``, ``batches()``,
    ``partition_stats()``, ``total_stats()``, ``skipped_partitions`` —
    so feeds and the study pipeline accept either store.

    ``on_error="skip"`` makes reads lenient: a damaged segment costs
    its own partitions (recorded in :attr:`skipped_partitions`), never
    the run.
    """

    def __init__(
        self,
        directory: str,
        on_error: str = "raise",
        create: bool = False,
    ) -> None:
        if on_error not in ("raise", "skip"):
            raise ValueError("on_error must be 'raise' or 'skip'")
        self.directory = directory
        self.on_error = on_error
        #: (source, day, reason) for partitions dropped by lenient reads.
        self.skipped_partitions: List[Tuple[str, int, str]] = []
        self._readers: Dict[str, SegmentReader] = {}
        self._bad_files: Set[str] = set()
        manifest_path = os.path.join(directory, "manifest.json")
        if os.path.exists(manifest_path):
            self._manifest = StoreManifest.load(directory)
        elif create:
            self._manifest = StoreManifest()
        else:
            raise StorageError(
                f"no manifest in {directory}; pass create=True to start "
                f"an empty store"
            )

    # -- writing ------------------------------------------------------------

    def append(
        self, source: str, day: int, observations: Sequence[DomainObservation]
    ) -> None:
        """Write a day's observations as a fresh generation-0 segment."""
        self._write_segment(
            [(source, day, observation_columns(observations))], generation=0
        )

    def append_batch(
        self, source: str, day: int, batch: ObservationBatch
    ) -> None:
        """Write a batch as a fresh generation-0 segment."""
        self._write_segment(
            [(source, day, batch_columns(batch))], generation=0
        )

    def append_columns(
        self, source: str, day: int, columns: Columns
    ) -> None:
        """Write already-shredded column lists as a gen-0 segment (the
        migration path — no row boxing, no re-interning)."""
        missing = [name for name in COLUMN_ORDER if name not in columns]
        if missing:
            raise StorageError(
                f"partition {source}/{day} is missing columns {missing}"
            )
        self._write_segment([(source, day, columns)], generation=0)

    def append_partitions(
        self,
        partitions: Iterable[
            Tuple[str, int, Sequence[DomainObservation]]
        ],
    ) -> None:
        """Land many partitions as one gen-0 segment in one manifest
        swap — the bulk-load path. Per-partition ``append`` pays one
        fsync and one manifest rewrite per call, which is quadratic in
        partition count over a whole-history load; this pays both
        once."""
        shredded = [
            (source, day, observation_columns(observations))
            for source, day, observations in partitions
        ]
        if shredded:
            self._write_segment(shredded, generation=0)

    def _write_segment(
        self,
        partitions: Sequence[Tuple[str, int, Columns]],
        generation: int,
        replacing: Optional[Set[str]] = None,
    ) -> str:
        """Write one segment and swap the manifest in a single step.

        *replacing* names segment files superseded by the new one
        (compaction); they leave the manifest in the same atomic
        ``manifest.json`` replace that introduces the new segment, so a
        crash can strand an unreferenced file but never a manifest that
        double-counts a partition.
        """
        sequence = self._manifest.next_sequence()
        relative = os.path.join(
            SEGMENTS_DIR, f"g{generation}-{sequence:06d}{SEGMENT_SUFFIX}"
        )
        path = os.path.join(self.directory, relative)
        size = write_segment(path, partitions)
        meta = SegmentMeta.describe(
            file=relative,
            generation=generation,
            size=size,
            partitions=[
                (source, day, len(columns["domain"]))
                for source, day, columns in partitions
            ],
        )
        if replacing:
            self._manifest.segments = [
                existing
                for existing in self._manifest.segments
                if existing.file not in replacing
            ]
        self._manifest.segments.append(meta)
        self._manifest.save(self.directory)
        return relative

    # -- segment access -----------------------------------------------------

    def _reader(self, meta: SegmentMeta) -> Optional[SegmentReader]:
        """The (cached) reader for one segment, honouring ``on_error``."""
        if meta.file in self._bad_files:
            return None
        reader = self._readers.get(meta.file)
        if reader is not None:
            return reader
        path = os.path.join(self.directory, meta.file)
        try:
            reader = SegmentReader(path)
        except StorageError as exc:
            if self.on_error == "raise":
                raise
            self._bad_files.add(meta.file)
            for source, day, _rows in meta.partitions:
                self.skipped_partitions.append((source, day, str(exc)))
            return None
        self._readers[meta.file] = reader
        return reader

    def _partition_refs(
        self, source: str, day: int
    ) -> Iterator[Tuple[SegmentReader, PartitionRef]]:
        """Every stored fragment of ``(source, day)``, manifest order."""
        for meta in self._manifest.select(
            sources=(source,), start=day, end=day
        ):
            if not any(
                s == source and d == day for s, d, _ in meta.partitions
            ):
                continue
            reader = self._reader(meta)
            if reader is None:
                continue
            for ref in reader.partitions:
                if ref.source == source and ref.day == day:
                    yield reader, ref

    # -- reading ------------------------------------------------------------

    def partitions(self) -> List[Tuple[str, int]]:
        return self._manifest.partitions()

    def row_count(self, source: str, day: int) -> int:
        return self._manifest.row_count(source, day)

    def rows(self, source: str, day: int) -> Iterator[DomainObservation]:
        """Re-materialise the observations of one partition."""
        for reader, ref in self._partition_refs(source, day):
            columns = self._read_columns(reader, ref, source, day)
            if columns is None:
                continue
            for index in range(ref.rows):
                # The row-shaped compatibility path; bulk consumers use
                # batch()/batches() instead.
                yield DomainObservation(  # repro: ignore[row-boxing-in-hot-path]
                    day=day,
                    domain=columns["domain"][index],
                    tld=columns["tld"][index],
                    ns_names=tuple(columns["ns_names"][index]),
                    apex_addrs=tuple(columns["apex_addrs"][index]),
                    www_cnames=tuple(columns["www_cnames"][index]),
                    www_addrs=tuple(columns["www_addrs"][index]),
                    apex_addrs6=tuple(columns["apex_addrs6"][index]),
                    www_addrs6=tuple(columns["www_addrs6"][index]),
                    asns=frozenset(columns["asns"][index]),
                )

    def _read_columns(
        self, reader: SegmentReader, ref: PartitionRef, source: str, day: int
    ) -> Optional[Columns]:
        try:
            return {
                name: reader.column_cells(ref, name)
                for name in COLUMN_ORDER
            }
        except StorageError as exc:
            if self.on_error == "raise":
                raise
            self._bad_files.add(
                os.path.relpath(reader.path, self.directory)
            )
            self.skipped_partitions.append((source, day, str(exc)))
            return None

    def batch(
        self,
        source: str,
        day: int,
        builder: Optional[BatchBuilder] = None,
    ) -> ObservationBatch:
        """One partition as a columnar batch, interned translate-once.

        Each distinct dictionary entry is interned exactly once; rows
        map through the page's index stream with plain list lookups —
        the zero-copy hot path from segment bytes to batch columns.
        """
        out = (
            builder if builder is not None else BatchBuilder()
        ).new_batch()
        for reader, ref in self._partition_refs(source, day):
            self._extend_batch(out, reader, ref, source, day)
        return out

    def _extend_batch(
        self,
        out: ObservationBatch,
        reader: SegmentReader,
        ref: PartitionRef,
        source: str,
        day: int,
    ) -> None:
        names = out.names
        addresses = out.addresses
        try:
            pages = {
                name: reader.column_page(ref, name)
                for name in COLUMN_ORDER
            }
        except StorageError as exc:
            if self.on_error == "raise":
                raise
            self._bad_files.add(
                os.path.relpath(reader.path, self.directory)
            )
            self.skipped_partitions.append((source, day, str(exc)))
            return
        translated: Dict[str, List[Any]] = {}
        for name in ("domain", "tld"):
            entries, indexes = pages[name]
            ids = [names.intern(entry) for entry in entries]
            translated[name] = [ids[i] for i in indexes]
        for name in ("ns_names", "www_cnames"):
            entries, indexes = pages[name]
            tuples = [names.intern_tuple(entry) for entry in entries]
            translated[name] = [tuples[i] for i in indexes]
        for name in (
            "apex_addrs", "www_addrs", "apex_addrs6", "www_addrs6"
        ):
            entries, indexes = pages[name]
            tuples = [addresses.intern_tuple(entry) for entry in entries]
            translated[name] = [tuples[i] for i in indexes]
        asn_entries, asn_indexes = pages["asns"]
        translated["asns"] = [asn_entries[i] for i in asn_indexes]
        out.days.extend([day] * ref.rows)
        out.domains.extend(translated["domain"])
        out.tlds.extend(translated["tld"])
        out.ns_names.extend(translated["ns_names"])
        out.www_cnames.extend(translated["www_cnames"])
        out.apex_addrs.extend(translated["apex_addrs"])
        out.www_addrs.extend(translated["www_addrs"])
        out.apex_addrs6.extend(translated["apex_addrs6"])
        out.www_addrs6.extend(translated["www_addrs6"])
        out.asns.extend(translated["asns"])

    def batches(
        self, builder: Optional[BatchBuilder] = None
    ) -> Iterator[Tuple[str, int, ObservationBatch]]:
        """Every partition as ``(source, day, batch)``, in sorted
        partition order, sharing one pool pair across all yields."""
        shared = builder if builder is not None else BatchBuilder()
        for source, day in self.partitions():
            yield source, day, self.batch(source, day, builder=shared)

    # -- statistics ---------------------------------------------------------

    def partition_stats(self, source: str, day: int) -> PartitionStats:
        """On-disk size accounting for one partition.

        ``encoded_bytes`` is the real segment footprint: the whole file
        (header + pages + directory + footer) when the partition has
        its own segment, its column pages' share when it lives inside a
        multi-partition compacted run.
        """
        rows = 0
        encoded = 0
        for meta in self._manifest.select(
            sources=(source,), start=day, end=day
        ):
            own = [
                (s, d, r)
                for s, d, r in meta.partitions
                if s == source and d == day
            ]
            if not own:
                continue
            rows += sum(r for _, _, r in own)
            if len(meta.partitions) == len(own):
                encoded += meta.bytes
            else:
                reader = self._reader(meta)
                if reader is None:
                    continue
                encoded += sum(
                    ref.page_bytes
                    for ref in reader.partitions
                    if ref.source == source and ref.day == day
                )
        return PartitionStats(
            source=source,
            day=day,
            rows=rows,
            data_points=rows * MEASUREMENTS_PER_DOMAIN_DAY,
            encoded_bytes=encoded,
        )

    def total_stats(self, source: Optional[str] = None) -> PartitionStats:
        """Aggregate stats over all (or one source's) partitions."""
        if source is None:
            rows = sum(meta.rows for meta in self._manifest.segments)
            encoded = sum(meta.bytes for meta in self._manifest.segments)
            days = {
                day
                for meta in self._manifest.segments
                for _, day, _ in meta.partitions
            }
            return PartitionStats(
                source="total",
                day=len(days),
                rows=rows,
                data_points=rows * MEASUREMENTS_PER_DOMAIN_DAY,
                encoded_bytes=encoded,
            )
        rows = 0
        encoded = 0
        source_days: Set[int] = set()
        for partition_source, day in self.partitions():
            if partition_source != source:
                continue
            stats = self.partition_stats(source, day)
            rows += stats.rows
            encoded += stats.encoded_bytes
            source_days.add(day)
        return PartitionStats(
            source=source,
            day=len(source_days),
            rows=rows,
            data_points=rows * MEASUREMENTS_PER_DOMAIN_DAY,
            encoded_bytes=encoded,
        )

    # -- compaction ---------------------------------------------------------

    def compact(self, fanout: int = 8) -> List[str]:
        """Tiered compaction: merge any generation with ≥ *fanout*
        segments into one multi-day run of the next generation.

        Returns the relative paths of the segments written. Runs until
        no tier is over the fanout, so a long append history collapses
        into a handful of large sorted runs while the manifest's
        day-range metadata keeps pruning exact.
        """
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        written: List[str] = []
        while True:
            tiers: Dict[int, List[SegmentMeta]] = {}
            for meta in self._manifest.segments:
                tiers.setdefault(meta.generation, []).append(meta)
            merged = None
            for generation in sorted(tiers):
                group = tiers[generation]
                if len(group) >= fanout:
                    merged = (generation, group)
                    break
            if merged is None:
                return written
            generation, group = merged
            written.append(self._merge(group, generation + 1))

    def _merge(
        self, group: Sequence[SegmentMeta], generation: int
    ) -> str:
        """Merge *group* into one segment of *generation*."""
        gathered: Dict[Tuple[str, int], Columns] = {}
        for meta in group:
            reader = self._readers.get(meta.file)
            if reader is None:
                reader = SegmentReader(
                    os.path.join(self.directory, meta.file)
                )
                self._readers[meta.file] = reader
            for ref in reader.partitions:
                columns = {
                    name: reader.column_cells(ref, name)
                    for name in COLUMN_ORDER
                }
                existing = gathered.get((ref.source, ref.day))
                if existing is None:
                    gathered[(ref.source, ref.day)] = columns
                else:
                    for name in COLUMN_ORDER:
                        existing[name].extend(columns[name])
        ordered = [
            (source, day, gathered[(source, day)])
            for source, day in sorted(
                gathered, key=lambda key: (key[1], key[0])
            )
        ]
        removed = {meta.file for meta in group}
        relative = self._write_segment(
            ordered, generation=generation, replacing=removed
        )
        for file in sorted(removed):
            reader = self._readers.pop(file, None)
            if reader is not None:
                reader.close()
            try:
                os.remove(os.path.join(self.directory, file))
            except OSError:
                pass
        return relative

    # -- distribution -------------------------------------------------------

    def manifest_slices(
        self,
        shard_count: int,
        sources: Optional[Sequence[str]] = None,
        by: str = "domains",
    ) -> List[ManifestSlice]:
        """Picklable read plans for a sharded pass over this store.

        ``by="domains"`` returns ``shard_count`` slices that each cover
        *all* selected partitions and keep only their domain hash
        shard — the plan for whole-history passes (detection), whose
        per-domain contract needs every day of a domain in one worker.
        ``by="partitions"`` splits the sorted partition list into
        contiguous runs — the plan for commutative per-partition folds
        (the sketch rebuild). Either way a slice is directory + keys,
        no handles, so it ships to any worker as a tiny pickle.
        """
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        partitions = tuple(self._manifest.partitions(sources=sources))
        if by == "domains":
            return [
                ManifestSlice(
                    self.directory,
                    partitions,
                    domain_shard=(index, shard_count),
                    on_error=self.on_error,
                )
                for index in range(shard_count)
            ]
        if by == "partitions":
            slices: List[ManifestSlice] = []
            size, extra = divmod(len(partitions), shard_count)
            start = 0
            for index in range(shard_count):
                end = start + size + (1 if index < extra else 0)
                slices.append(
                    ManifestSlice(
                        self.directory,
                        partitions[start:end],
                        on_error=self.on_error,
                    )
                )
                start = end
            return slices
        raise ValueError("by must be 'domains' or 'partitions'")

    # -- lifecycle ----------------------------------------------------------

    @property
    def manifest(self) -> StoreManifest:
        return self._manifest

    def close(self) -> None:
        for file in sorted(self._readers):
            self._readers[file].close()
        self._readers.clear()

    def __enter__(self) -> "SegmentStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "SegmentStore",
    "batch_columns",
    "observation_columns",
]
