"""The versioned binary segment format and its mmap reader.

One segment file holds one or more ``(source, day)`` partitions, each
stored as per-column dictionary pages (:mod:`repro.store.codecs`):

.. code-block:: text

    header     <4sHHII>   magic "RSG2", version, flags,
                          partition count, directory length
    directory  per partition:
                 <H> source length, source bytes (utf-8),
                 <I> day, <I> rows, <H> column count,
                 per column:
                   <H> name length, name bytes (utf-8),
                   <B> cell kind, <B> codec id,
                   <Q> page offset, <Q> page length, <I> page CRC-32
    pages      the column pages, back to back
    footer     <IQ4s>     directory CRC-32, total file length,
                          magic "2GSR"

All integers are little-endian. Page offsets are absolute file
offsets, so a reader can map the file and slice any column's bytes
zero-copy without touching the others — the directory (parsed once at
open) plus the footer checks are the only eagerly-read bytes, and
partition pruning at the manifest level means cold segments are never
opened at all.

Writing goes through a temporary sibling file and ``os.replace`` so a
crash never leaves a half-written segment behind; any malformed byte
on the read side raises :class:`~repro.store.errors.StorageError`.
"""

from __future__ import annotations

import mmap
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.store import codecs
from repro.store.codecs import COLUMN_KINDS, Entry, _Cursor
from repro.store.errors import StorageError

MAGIC = b"RSG2"
FOOTER_MAGIC = b"2GSR"
VERSION = 2
#: The on-disk extension of v2 segment files.
SEGMENT_SUFFIX = ".rseg"

_HEADER = struct.Struct("<4sHHII")
_FOOTER = struct.Struct("<IQ4s")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

#: One partition's input shape for :func:`build_segment`.
PartitionColumns = Mapping[str, Sequence[Any]]


@dataclass(frozen=True)
class ColumnRef:
    """Directory entry for one column page."""

    name: str
    kind: int
    codec: int
    offset: int
    length: int
    crc: int


@dataclass
class PartitionRef:
    """Directory entry for one ``(source, day)`` partition."""

    source: str
    day: int
    rows: int
    columns: Dict[str, ColumnRef] = field(default_factory=dict)

    @property
    def page_bytes(self) -> int:
        """The partition's column page bytes (its share of the file)."""
        return sum(ref.length for ref in self.columns.values())


def _column_kind(name: str) -> int:
    kind = COLUMN_KINDS.get(name)
    if kind is None:
        raise StorageError(f"unknown column {name!r}")
    return kind


def build_segment(
    partitions: Sequence[Tuple[str, int, PartitionColumns]],
) -> bytes:
    """Serialise partitions (in the given order) into segment bytes.

    Column pages are laid out partition-major in sorted column-name
    order; the output is a deterministic function of the input, so two
    stores holding the same partitions produce byte-identical segments.
    """
    directory = bytearray()
    pages: List[bytes] = []
    page_plan: List[Tuple[bytearray, int]] = []
    pages_size = 0
    for source, day, columns in partitions:
        source_bytes = source.encode("utf-8")
        names = sorted(columns)
        directory.extend(_U16.pack(len(source_bytes)))
        directory.extend(source_bytes)
        directory.extend(_U32.pack(day))
        rows = len(columns[names[0]]) if names else 0
        directory.extend(_U32.pack(rows))
        directory.extend(_U16.pack(len(names)))
        for name in names:
            cells = columns[name]
            if len(cells) != rows:
                raise StorageError(
                    f"ragged partition {source}/{day}: column {name!r} "
                    f"has {len(cells)} rows, expected {rows}"
                )
            kind = _column_kind(name)
            codec, page = codecs.encode_column(kind, cells)
            name_bytes = name.encode("utf-8")
            directory.extend(_U16.pack(len(name_bytes)))
            directory.extend(name_bytes)
            directory.append(kind)
            directory.append(codec)
            # Offsets are absolute; patched below once the directory
            # length (and so the pages' base offset) is known.
            page_plan.append((directory, len(directory)))
            directory.extend(struct.pack("<QQ", 0, len(page)))
            directory.extend(_U32.pack(zlib.crc32(page)))
            pages.append(page)
            pages_size += len(page)
    base = _HEADER.size + len(directory)
    offset = base
    for (target, position), page in zip(page_plan, pages):
        struct.pack_into("<Q", target, position, offset)
        offset += len(page)
    header = _HEADER.pack(
        MAGIC, VERSION, 0, len(partitions), len(directory)
    )
    total = _HEADER.size + len(directory) + pages_size + _FOOTER.size
    footer = _FOOTER.pack(zlib.crc32(bytes(directory)), total, FOOTER_MAGIC)
    return b"".join([header, bytes(directory), *pages, footer])


def write_segment_bytes(path: str, data: bytes) -> int:
    """Atomically land pre-built segment bytes; returns the size.

    The bytes go to a temporary sibling first and are renamed into
    place, so readers never observe a torn segment.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    temporary = path + ".tmp"
    with open(temporary, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)
    return len(data)


def write_segment(
    path: str, partitions: Sequence[Tuple[str, int, PartitionColumns]]
) -> int:
    """Build and atomically write a segment file; returns its size."""
    return write_segment_bytes(path, build_segment(partitions))


def _parse_directory(
    buffer: "memoryview", label: str
) -> List[PartitionRef]:
    try:
        magic, version, _flags, partition_count, dir_length = (
            _HEADER.unpack(buffer[: _HEADER.size])
        )
    except struct.error as exc:
        raise StorageError(f"truncated segment header in {label}") from exc
    if magic != MAGIC:
        raise StorageError(f"bad segment magic in {label}")
    if version != VERSION:
        raise StorageError(
            f"unsupported segment version {version} in {label}"
        )
    total = len(buffer)
    if _HEADER.size + dir_length + _FOOTER.size > total:
        raise StorageError(f"truncated segment directory in {label}")
    try:
        dir_crc, total_length, footer_magic = _FOOTER.unpack(
            buffer[total - _FOOTER.size:]
        )
    except struct.error as exc:
        raise StorageError(f"truncated segment footer in {label}") from exc
    if footer_magic != FOOTER_MAGIC:
        raise StorageError(f"bad footer magic in {label}")
    if total_length != total:
        raise StorageError(
            f"segment length mismatch in {label}: "
            f"{total} on disk, {total_length} recorded"
        )
    directory = bytes(buffer[_HEADER.size:_HEADER.size + dir_length])
    if zlib.crc32(directory) != dir_crc:
        raise StorageError(f"segment directory checksum mismatch in {label}")
    pages_end = total - _FOOTER.size
    cursor = _Cursor(directory)
    partitions: List[PartitionRef] = []
    try:
        for _ in range(partition_count):
            source = cursor.take(
                int(_U16.unpack(cursor.take(2))[0])
            ).decode("utf-8")
            day = cursor.u32()
            rows = cursor.u32()
            column_count = int(_U16.unpack(cursor.take(2))[0])
            partition = PartitionRef(source=source, day=day, rows=rows)
            for _ in range(column_count):
                name = cursor.take(
                    int(_U16.unpack(cursor.take(2))[0])
                ).decode("utf-8")
                kind = cursor.u8()
                codec = cursor.u8()
                offset, length = struct.unpack("<QQ", cursor.take(16))
                crc = cursor.u32()
                if offset < _HEADER.size + dir_length or (
                    offset + length > pages_end
                ):
                    raise StorageError(
                        f"column page out of bounds in {label}"
                    )
                partition.columns[name] = ColumnRef(
                    name=name, kind=kind, codec=codec,
                    offset=offset, length=length, crc=crc,
                )
            partitions.append(partition)
        if not cursor.done():
            raise StorageError(f"trailing directory bytes in {label}")
    except (struct.error, UnicodeDecodeError, ValueError) as exc:
        raise StorageError(f"corrupt segment directory in {label}") from exc
    return partitions


class SegmentReader:
    """A parsed segment: directory in memory, pages read zero-copy.

    Opening maps the file with :mod:`mmap` and verifies only the
    header, footer, and directory checksum; column pages are sliced
    (and CRC-checked) lazily, per read, straight out of the mapping.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            self._file: Optional[Any] = open(path, "rb")
            self._mmap: Optional[mmap.mmap] = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except (OSError, ValueError) as exc:
            if getattr(self, "_file", None) is not None:
                self._file.close()  # type: ignore[union-attr]
            raise StorageError(
                f"cannot open segment {path}: {exc}"
            ) from exc
        self._buffer: Optional[memoryview] = memoryview(self._mmap)
        try:
            self.partitions = _parse_directory(self._buffer, path)
        except StorageError:
            self.close()
            raise
        self.file_size = len(self._buffer) if self._buffer is not None else 0

    @classmethod
    def from_bytes(
        cls, data: Union[bytes, bytearray], label: str = "<memory>"
    ) -> "SegmentReader":
        """A reader over in-memory segment bytes (no file, no mmap)."""
        reader = cls.__new__(cls)
        reader.path = label
        reader._file = None
        reader._mmap = None
        reader._buffer = memoryview(bytes(data))
        reader.partitions = _parse_directory(reader._buffer, label)
        reader.file_size = len(reader._buffer)
        return reader

    # -- page access --------------------------------------------------------

    def _page(self, ref: ColumnRef) -> bytes:
        """One column's page body, CRC-checked and inflated if needed.

        The page is sliced out of the mapping as a memoryview —
        checksum and decompression read straight from the page cache —
        and the view is released before returning (even on error), so
        no exported pointer can outlive the reader and pin the map.
        """
        buffer = self._buffer
        if buffer is None:
            raise StorageError(f"segment {self.path} is closed")
        view = buffer[ref.offset:ref.offset + ref.length]
        try:
            if zlib.crc32(view) != ref.crc:
                raise StorageError(
                    f"page checksum mismatch for column {ref.name!r} "
                    f"in {self.path}"
                )
            if ref.codec & codecs.FLAG_ZLIB:
                try:
                    return zlib.decompress(view)
                except zlib.error as exc:
                    raise StorageError(
                        f"corrupt deflated page for column {ref.name!r} "
                        f"in {self.path}: {exc}"
                    ) from exc
            return bytes(view)
        finally:
            view.release()

    def column_page(
        self, partition: PartitionRef, name: str
    ) -> Tuple[List[Entry], List[int]]:
        """The ``(dictionary entries, row indexes)`` of one column —
        the translate-once shape batch building interns from."""
        ref = partition.columns.get(name)
        if ref is None:
            raise StorageError(
                f"missing column {name!r} for {partition.source}/"
                f"{partition.day} in {self.path}"
            )
        entries, indexes = codecs.decode_page(
            ref.kind, ref.codec & ~codecs.FLAG_ZLIB, self._page(ref)
        )
        if len(indexes) != partition.rows:
            raise StorageError(
                f"row count mismatch for column {name!r} in {self.path}: "
                f"{len(indexes)} != {partition.rows}"
            )
        return entries, indexes

    def column_cells(self, partition: PartitionRef, name: str) -> List[Any]:
        """One column materialised back to plain cell values."""
        entries, indexes = self.column_page(partition, name)
        if partition.columns[name].kind == codecs.KIND_STR:
            return [entries[i] for i in indexes]
        materialised = [list(entry) for entry in entries]
        return [materialised[i] for i in indexes]

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._buffer is not None:
            self._buffer.release()
            self._buffer = None
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError:
                # A stray exported view (e.g. held alive by an exception
                # traceback) pins the map; dropping our reference lets
                # the GC unmap it once the view dies.
                pass
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "SegmentReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
