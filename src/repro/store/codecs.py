"""Per-column page codecs for the v2 segment format.

A column page is a dictionary page in the Parquet spirit: the distinct
cell values (the *dictionary*, in first-seen order) followed by an
*index stream* mapping each row to its dictionary entry. Observation
columns repeat massively — mass hosters share NS sets across millions
of domains, domains repeat them across days — so the dictionary is tiny
relative to the row count and the index stream run-length encodes well.

Three cell kinds cover every observation column:

========  ==============================  =======================
kind      cell value                      columns
========  ==============================  =======================
STR       ``str``                         domain, tld
STR_LIST  list of ``str``                 ns/cname/address columns
INT_LIST  list of ``int``                 asns
========  ==============================  =======================

and two index codecs, chosen adaptively per page by encoded size:

* ``CODEC_RAW`` — fixed-width little-endian dictionary indexes, one
  per row (wins when runs are short);
* ``CODEC_DICT_RLE`` — ``(index, run length)`` pairs (wins when
  consecutive rows repeat, e.g. sorted-by-provider partitions).

Either may carry ``FLAG_ZLIB`` in the codec id's high bit, meaning the
whole page body is additionally deflated — the fallback that keeps
pathological pages (e.g. all-distinct long strings) no worse than v1.

Every malformed-input failure raises
:class:`~repro.store.errors.StorageError`; ``struct.error`` and
``zlib.error`` never escape this module.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.store.errors import StorageError

KIND_STR = 0
KIND_STR_LIST = 1
KIND_INT_LIST = 2

CODEC_RAW = 0
CODEC_DICT_RLE = 1
#: High bit of the codec id: the page body is zlib-deflated.
FLAG_ZLIB = 0x80

#: The canonical observation columns, in storage order, with cell kinds.
COLUMN_KINDS: Dict[str, int] = {
    "domain": KIND_STR,
    "tld": KIND_STR,
    "ns_names": KIND_STR_LIST,
    "apex_addrs": KIND_STR_LIST,
    "www_cnames": KIND_STR_LIST,
    "www_addrs": KIND_STR_LIST,
    "apex_addrs6": KIND_STR_LIST,
    "www_addrs6": KIND_STR_LIST,
    "asns": KIND_INT_LIST,
}
COLUMN_ORDER: Tuple[str, ...] = (
    "domain",
    "tld",
    "ns_names",
    "apex_addrs",
    "www_cnames",
    "www_addrs",
    "apex_addrs6",
    "www_addrs6",
    "asns",
)

#: A decoded dictionary entry: str, tuple of str, or tuple of int.
Entry = Union[str, Tuple[str, ...], Tuple[int, ...]]

_U32 = struct.Struct("<I")
_WIDTH_FORMATS = {1: "B", 2: "H", 4: "I"}


def _index_width(dict_count: int) -> int:
    if dict_count <= 0xFF:
        return 1
    if dict_count <= 0xFFFF:
        return 2
    return 4


def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    return (value >> 1) if not (value & 1) else -((value + 1) >> 1)


def _write_varint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append(0x80 | (value & 0x7F))
        value >>= 7
    out.append(value)


def _read_varints(data: bytes, count: int) -> List[int]:
    """Decode *count* unsigned LEB128 varints from *data*."""
    values: List[int] = []
    value = 0
    shift = 0
    for byte in data:
        value |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
            if shift > 70:
                raise StorageError("varint overlong in int-list page")
        else:
            values.append(value)
            value = 0
            shift = 0
    if shift:
        raise StorageError("truncated varint in int-list page")
    if len(values) != count:
        raise StorageError(
            f"int-list varint count mismatch: {len(values)} != {count}"
        )
    return values


class _Cursor:
    """Bounds-checked sequential reader over a page body."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, length: int) -> bytes:
        end = self.pos + length
        if length < 0 or end > len(self.data):
            raise StorageError("truncated column page")
        view = self.data[self.pos:end]
        self.pos = end
        return view

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return int(_U32.unpack(self.take(4))[0])

    def array(self, width: int, count: int) -> Tuple[int, ...]:
        """*count* fixed-width little-endian unsigned integers."""
        symbol = _WIDTH_FORMATS.get(width)
        if symbol is None:
            raise StorageError(f"bad integer width {width} in column page")
        raw = self.take(width * count)
        if width == 1:
            return tuple(raw)
        return struct.unpack(f"<{count}{symbol}", raw)

    def done(self) -> bool:
        return self.pos == len(self.data)


def _pack_array(out: bytearray, width: int, values: Sequence[int]) -> None:
    if width == 1:
        out.extend(bytes(values))
    else:
        out.extend(
            struct.pack(f"<{len(values)}{_WIDTH_FORMATS[width]}", *values)
        )


def _build_dictionary(
    kind: int, cells: Sequence[Any]
) -> Tuple[List[Entry], List[int]]:
    """First-seen dictionary entries plus per-row entry indexes."""
    positions: Dict[Entry, int] = {}
    entries: List[Entry] = []
    indexes: List[int] = []
    if kind == KIND_STR:
        for cell in cells:
            found = positions.get(cell)
            if found is None:
                found = len(entries)
                positions[cell] = found
                entries.append(cell)
            indexes.append(found)
    else:
        for cell in cells:
            key = tuple(cell)
            found = positions.get(key)
            if found is None:
                found = len(entries)
                positions[key] = found
                entries.append(key)
            indexes.append(found)
    return entries, indexes


def _encode_string_block(out: bytearray, texts: Sequence[str]) -> None:
    """Cumulative-end offset table plus one concatenated UTF-8 blob."""
    blobs = [text.encode("utf-8", "surrogatepass") for text in texts]
    ends: List[int] = []
    total = 0
    for blob in blobs:
        total += len(blob)
        ends.append(total)
    out.extend(_U32.pack(total))
    out.extend(struct.pack(f"<{len(ends)}I", *ends))
    for blob in blobs:
        out.extend(blob)


def _decode_string_block(cursor: _Cursor, count: int) -> List[str]:
    blob_length = cursor.u32()
    ends = cursor.array(4, count)
    blob = cursor.take(blob_length)
    if count and ends[-1] != blob_length:
        raise StorageError("string blob length mismatch in column page")
    texts: List[str] = []
    start = 0
    for end in ends:
        if end < start or end > blob_length:
            raise StorageError("string offsets not monotonic in column page")
        texts.append(blob[start:end].decode("utf-8", "surrogatepass"))
        start = end
    return texts


def _encode_dict_section(out: bytearray, kind: int,
                         entries: Sequence[Entry]) -> None:
    if kind == KIND_STR:
        _encode_string_block(out, entries)  # type: ignore[arg-type]
        return
    if kind == KIND_STR_LIST:
        strings: Dict[str, int] = {}
        texts: List[str] = []
        flattened: List[int] = []
        counts: List[int] = []
        for entry in entries:
            counts.append(len(entry))
            for text in entry:
                found = strings.get(text)  # type: ignore[call-overload]
                if found is None:
                    found = len(texts)
                    strings[text] = found  # type: ignore[index]
                    texts.append(text)  # type: ignore[arg-type]
                flattened.append(found)
        out.extend(_U32.pack(len(texts)))
        _encode_string_block(out, texts)
        sid_width = _index_width(len(texts))
        out.append(sid_width)
        out.extend(struct.pack(f"<{len(counts)}I", *counts))
        _pack_array(out, sid_width, flattened)
        return
    if kind == KIND_INT_LIST:
        counts = [len(entry) for entry in entries]
        out.extend(struct.pack(f"<{len(counts)}I", *counts))
        stream = bytearray()
        for entry in entries:
            previous = 0
            first = True
            for value in entry:
                _write_varint(
                    stream,
                    _zigzag(int(value) if first else int(value) - previous),
                )
                previous = int(value)
                first = False
        out.extend(_U32.pack(len(stream)))
        out.extend(stream)
        return
    raise StorageError(f"unknown cell kind {kind}")


def _decode_dict_section(cursor: _Cursor, kind: int,
                         dict_count: int) -> List[Entry]:
    if kind == KIND_STR:
        return list(_decode_string_block(cursor, dict_count))
    if kind == KIND_STR_LIST:
        text_count = cursor.u32()
        texts = _decode_string_block(cursor, text_count)
        sid_width = cursor.u8()
        counts = cursor.array(4, dict_count)
        flattened = cursor.array(sid_width, sum(counts))
        entries: List[Entry] = []
        position = 0
        for count in counts:
            ids = flattened[position:position + count]
            position += count
            try:
                entries.append(tuple(texts[i] for i in ids))
            except IndexError as exc:
                raise StorageError(
                    "string id out of range in column page"
                ) from exc
        return entries
    if kind == KIND_INT_LIST:
        counts = cursor.array(4, dict_count)
        stream_length = cursor.u32()
        stream = cursor.take(stream_length)
        values = _read_varints(stream, sum(counts))
        entries = []
        position = 0
        for count in counts:
            cell: List[int] = []
            previous = 0
            for offset in range(count):
                delta = _unzigzag(values[position + offset])
                previous = delta if offset == 0 else previous + delta
                cell.append(previous)
            position += count
            entries.append(tuple(cell))
        return entries
    raise StorageError(f"unknown cell kind {kind}")


def _encode_indexes(
    out: bytearray, indexes: Sequence[int], width: int
) -> int:
    """Append the cheaper index stream; returns the codec id used."""
    runs: List[Tuple[int, int]] = []
    for index in indexes:
        if runs and runs[-1][0] == index:
            runs[-1] = (index, runs[-1][1] + 1)
        else:
            runs.append((index, 1))
    rle_size = 4 + len(runs) * (width + 4)
    raw_size = len(indexes) * width
    if rle_size < raw_size:
        out.extend(_U32.pack(len(runs)))
        for index, run in runs:
            _pack_array(out, width, (index,))
            out.extend(_U32.pack(run))
        return CODEC_DICT_RLE
    _pack_array(out, width, indexes)
    return CODEC_RAW


def _decode_indexes(
    cursor: _Cursor, codec: int, width: int, row_count: int
) -> List[int]:
    if codec == CODEC_RAW:
        return list(cursor.array(width, row_count))
    if codec == CODEC_DICT_RLE:
        run_count = cursor.u32()
        indexes: List[int] = []
        for _ in range(run_count):
            index = cursor.array(width, 1)[0]
            run = cursor.u32()
            # Bound before allocating: a corrupt run length must raise,
            # not balloon memory expanding billions of rows.
            if len(indexes) + run > row_count:
                raise StorageError(
                    f"run-length overflow: {len(indexes) + run} > {row_count}"
                )
            indexes.extend([index] * run)
        if len(indexes) != row_count:
            raise StorageError(
                f"run-length total mismatch: {len(indexes)} != {row_count}"
            )
        return indexes
    raise StorageError(f"unknown index codec {codec}")


def encode_column(kind: int, cells: Sequence[Any]) -> Tuple[int, bytes]:
    """Encode one column's cells into ``(codec id, page bytes)``.

    The codec id combines the index codec with :data:`FLAG_ZLIB` when
    deflating the body pays for itself.
    """
    entries, indexes = _build_dictionary(kind, cells)
    body = bytearray()
    body.extend(_U32.pack(len(cells)))
    body.extend(_U32.pack(len(entries)))
    width = _index_width(len(entries))
    body.append(width)
    _encode_dict_section(body, kind, entries)
    codec = _encode_indexes(body, indexes, width)
    page = bytes(body)
    deflated = zlib.compress(page, 6)
    if len(deflated) < len(page):
        return codec | FLAG_ZLIB, deflated
    return codec, page


def decode_page(
    kind: int, codec: int, data: bytes
) -> Tuple[List[Entry], List[int]]:
    """Decode a page into ``(dictionary entries, per-row indexes)``.

    This is the hot-path shape: callers intern each *distinct* entry
    once and map rows through the index list, so per-row work is a
    single list lookup — no per-row parsing, no per-row interning.
    """
    if codec & FLAG_ZLIB:
        try:
            data = zlib.decompress(bytes(data))
        except zlib.error as exc:
            raise StorageError(f"corrupt deflated page: {exc}") from exc
        codec &= ~FLAG_ZLIB
    try:
        cursor = _Cursor(bytes(data))
        row_count = cursor.u32()
        dict_count = cursor.u32()
        width = cursor.u8()
        if width not in _WIDTH_FORMATS:
            raise StorageError(f"bad index width {width} in column page")
        entries = _decode_dict_section(cursor, kind, dict_count)
        indexes = _decode_indexes(cursor, codec, width, row_count)
        if not cursor.done():
            raise StorageError("trailing bytes after column page")
    except (struct.error, ValueError, OverflowError, MemoryError) as exc:
        raise StorageError(f"corrupt column page: {exc}") from exc
    for index in indexes:
        if index >= dict_count:
            raise StorageError("dictionary index out of range in page")
    return entries, indexes


def decode_column(kind: int, codec: int, data: bytes) -> List[Any]:
    """Materialise a page back into plain cell values (compat shape:
    ``str`` cells for STR, fresh-shared ``list`` cells otherwise, as the
    v1 JSON decoder produced)."""
    entries, indexes = decode_page(kind, codec, data)
    if kind == KIND_STR:
        return [entries[i] for i in indexes]
    materialised = [list(entry) for entry in entries]
    return [materialised[i] for i in indexes]
