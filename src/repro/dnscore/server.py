"""Authoritative name-server logic (the response-building half of RFC 1034).

A server hosts any number of zones. For a query it selects the zone with the
longest matching origin, walks the lookup (following in-zone CNAME chains),
and builds an answer, referral, NODATA, or NXDOMAIN response. Servers are
pure request → response functions; the transport layer handles delivery.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.dnscore.name import DomainName
from repro.dnscore.message import Message, make_response
from repro.dnscore.rrtypes import Opcode, Rcode, RRType
from repro.dnscore.zone import LookupStatus, Zone

MAX_CNAME_CHAIN = 16


class AuthoritativeServer:
    """An authoritative DNS server hosting one or more zones."""

    def __init__(self, name: str = "ns"):
        self.name = name
        self._zones: Dict[DomainName, Zone] = {}
        self.queries_handled = 0

    # -- zone management -----------------------------------------------------

    def attach_zone(self, zone: Zone) -> None:
        self._zones[zone.origin] = zone

    def detach_zone(self, origin: DomainName) -> Optional[Zone]:
        return self._zones.pop(origin, None)

    def zone_for(self, qname: DomainName) -> Optional[Zone]:
        """The hosted zone with the longest origin matching *qname*."""
        best: Optional[Zone] = None
        for origin, zone in self._zones.items():
            if qname.is_subdomain_of(origin):
                if best is None or len(origin) > len(best.origin):
                    best = zone
        return best

    @property
    def zones(self) -> List[Zone]:
        return list(self._zones.values())

    # -- query handling ---------------------------------------------------------

    def handle_query(self, query: Message) -> Message:
        """Answer *query* from hosted zone data."""
        self.queries_handled += 1
        if query.question is None:
            return make_response_refused(query)
        if query.flags.opcode != Opcode.QUERY:
            response = make_response(query, rcode=Rcode.NOTIMP)
            return response
        qname = query.question.qname
        qtype = query.question.qtype
        zone = self.zone_for(qname)
        if zone is None:
            return make_response(query, rcode=Rcode.REFUSED)

        response = make_response(query, authoritative=True)
        current = qname
        for _ in range(MAX_CNAME_CHAIN):
            result = zone.lookup(current, qtype)
            if result.status == LookupStatus.SUCCESS:
                response.answers.extend(result.rrset)
                self._add_apex_ns(zone, response)
                return response
            if result.status == LookupStatus.CNAME:
                response.answers.extend(result.rrset)
                target = result.rrset.records[0].rdata.target  # type: ignore
                if not target.is_subdomain_of(zone.origin):
                    # Chain leaves this zone; the resolver continues it.
                    self._add_apex_ns(zone, response)
                    return response
                current = target
                continue
            if result.status == LookupStatus.DELEGATION:
                response.flags = replace(response.flags, aa=False)
                response.authority.extend(result.delegation)
                response.additional.extend(result.glue)
                return response
            if result.status == LookupStatus.NODATA:
                self._add_soa(zone, response)
                return response
            # NXDOMAIN
            response.flags = replace(response.flags, rcode=Rcode.NXDOMAIN)
            self._add_soa(zone, response)
            return response
        # CNAME chain too long within a single zone.
        return make_response(query, rcode=Rcode.SERVFAIL)

    def _add_soa(self, zone: Zone, response: Message) -> None:
        soa_rrset = zone.get_rrset(zone.origin, RRType.SOA)
        if soa_rrset:
            response.authority.extend(soa_rrset)

    def _add_apex_ns(self, zone: Zone, response: Message) -> None:
        """Populate the authority section with the zone's NS rrset.

        This mirrors the examples in the paper's §2.1, where responses carry
        the authoritative NS in the AUTHORITY section — which is exactly the
        signal the detection methodology reads.
        """
        ns_rrset = zone.get_rrset(zone.origin, RRType.NS)
        if not ns_rrset:
            return
        present = {
            (r.name, r.rrtype, r.rdata.to_text()) for r in response.authority
        }
        for record in ns_rrset:
            key = (record.name, record.rrtype, record.rdata.to_text())
            if key not in present:
                response.authority.append(record)


def make_response_refused(query: Message) -> Message:
    """A REFUSED response for queries we cannot parse a question from."""
    response = Message(msg_id=query.msg_id)
    response.flags = replace(query.flags, qr=True, rcode=Rcode.REFUSED)
    return response


#: Classic DNS UDP payload limit; larger responses come back truncated.
DEFAULT_UDP_PAYLOAD = 512
#: The server-side EDNS(0) payload ceiling (the common 1232-byte choice).
DEFAULT_EDNS_PAYLOAD = 1232


def make_wire_handlers(
    server: AuthoritativeServer,
    udp_max: int = DEFAULT_UDP_PAYLOAD,
    edns_max: int = DEFAULT_EDNS_PAYLOAD,
):
    """``(datagram_handler, stream_handler)`` for a server.

    The datagram handler enforces the UDP size limit — the classic 512
    bytes, raised to ``min(client advertised, edns_max)`` when the query
    carries EDNS(0) — setting TC on overflow; the stream handler never
    truncates. Both take and return wire bytes, matching the transport's
    handler contract.
    """
    from repro.dnscore.message import EdnsInfo
    from repro.dnscore.wire import decode_message, encode_message

    def _respond(payload: bytes):
        query = decode_message(payload)
        response = server.handle_query(query)
        if query.edns is not None:
            response.edns = EdnsInfo(payload_size=edns_max)
        return query, response

    def datagram(payload: bytes) -> bytes:
        query, response = _respond(payload)
        limit = udp_max
        if query.edns is not None:
            limit = max(udp_max, min(query.edns.payload_size, edns_max))
        return encode_message(response, max_size=limit)

    def stream(payload: bytes) -> bytes:
        _, response = _respond(payload)
        return encode_message(response)

    return datagram, stream
