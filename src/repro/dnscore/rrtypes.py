"""DNS protocol constants: record types/classes, opcodes, response codes."""

from __future__ import annotations

import enum


class RRType(enum.IntEnum):
    """Resource-record TYPE values (RFC 1035 §3.2.2 and successors)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    OPT = 41  # EDNS(0) pseudo-RR (RFC 6891)
    ANY = 255

    @classmethod
    def from_text(cls, text: str) -> "RRType":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown RR type {text!r}") from None


class RRClass(enum.IntEnum):
    """Resource-record CLASS values; only IN matters in practice."""

    IN = 1
    CH = 3
    ANY = 255


class Opcode(enum.IntEnum):
    """Message header OPCODE values."""

    QUERY = 0
    STATUS = 2
    NOTIFY = 4
    UPDATE = 5


class Rcode(enum.IntEnum):
    """Message header RCODE values."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5

#: Record types the measurement platform queries daily for each name
#: (the paper's §3.1: A, AAAA, NS; CNAMEs arrive in answers to those).
MEASURED_TYPES = (RRType.A, RRType.AAAA, RRType.NS)
