"""DNS message model: header flags, question, and record sections."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.dnscore.name import DomainName
from repro.dnscore.records import ResourceRecord
from repro.dnscore.rrtypes import Opcode, Rcode, RRClass, RRType


@dataclass(frozen=True)
class Flags:
    """The header flag bits (QR, AA, TC, RD, RA) plus opcode and rcode."""

    qr: bool = False
    opcode: Opcode = Opcode.QUERY
    aa: bool = False
    tc: bool = False
    rd: bool = True
    ra: bool = False
    rcode: Rcode = Rcode.NOERROR

    def pack(self) -> int:
        """Pack into the 16-bit header field."""
        value = 0
        value |= int(self.qr) << 15
        value |= (int(self.opcode) & 0xF) << 11
        value |= int(self.aa) << 10
        value |= int(self.tc) << 9
        value |= int(self.rd) << 8
        value |= int(self.ra) << 7
        value |= int(self.rcode) & 0xF
        return value

    @classmethod
    def unpack(cls, value: int) -> "Flags":
        return cls(
            qr=bool(value >> 15 & 1),
            opcode=Opcode(value >> 11 & 0xF),
            aa=bool(value >> 10 & 1),
            tc=bool(value >> 9 & 1),
            rd=bool(value >> 8 & 1),
            ra=bool(value >> 7 & 1),
            rcode=Rcode(value & 0xF),
        )


@dataclass(frozen=True)
class EdnsInfo:
    """EDNS(0) parameters carried by an OPT pseudo-RR (RFC 6891).

    The OPT record abuses the fixed RR fields — CLASS is the sender's
    maximum UDP payload size, TTL packs extended-rcode/version/flags —
    so it is modelled here as message metadata, not as a resource record.
    """

    payload_size: int = 1232
    version: int = 0
    flags: int = 0
    options: bytes = b""

    def __post_init__(self) -> None:
        if not 512 <= self.payload_size <= 0xFFFF:
            raise ValueError("EDNS payload size must be in [512, 65535]")
        if self.version != 0:
            raise ValueError("only EDNS version 0 is supported")


@dataclass(frozen=True)
class Question:
    """The question section entry: qname, qtype, qclass."""

    qname: DomainName
    qtype: RRType
    qclass: RRClass = RRClass.IN

    def to_text(self) -> str:
        return (
            f"{self.qname.to_text(trailing_dot=True)} "
            f"{self.qclass.name} {self.qtype.name}"
        )


@dataclass
class Message:
    """A DNS message: header, one question, and three record sections."""

    msg_id: int = 0
    flags: Flags = field(default_factory=Flags)
    question: Optional[Question] = None
    answers: List[ResourceRecord] = field(default_factory=list)
    authority: List[ResourceRecord] = field(default_factory=list)
    additional: List[ResourceRecord] = field(default_factory=list)
    #: EDNS(0) parameters (an OPT pseudo-RR on the wire), if present.
    edns: Optional[EdnsInfo] = None

    @property
    def rcode(self) -> Rcode:
        return self.flags.rcode

    def is_response(self) -> bool:
        return self.flags.qr

    def answer_rrs(self, rrtype: RRType) -> List[ResourceRecord]:
        """Answer-section records of the given type."""
        return [r for r in self.answers if r.rrtype == rrtype]

    def authority_rrs(self, rrtype: RRType) -> List[ResourceRecord]:
        return [r for r in self.authority if r.rrtype == rrtype]

    def is_referral(self) -> bool:
        """A delegation response: no answers, NS records in authority."""
        return (
            self.flags.rcode == Rcode.NOERROR
            and not self.answers
            and any(r.rrtype == RRType.NS for r in self.authority)
            and not self.flags.aa
        )

    def to_text(self) -> str:
        """A dig-like rendering, useful in logs and doctests."""
        lines = [
            f";; ->>HEADER<<- opcode: {self.flags.opcode.name}, "
            f"status: {self.flags.rcode.name}, id: {self.msg_id}",
        ]
        if self.question is not None:
            lines.append(";; QUESTION SECTION:")
            lines.append(";" + self.question.to_text())
        for title, section in (
            ("ANSWER", self.answers),
            ("AUTHORITY", self.authority),
            ("ADDITIONAL", self.additional),
        ):
            if section:
                lines.append(f";; {title} SECTION:")
                lines.extend(record.to_text() for record in section)
        return "\n".join(lines)


def make_query(
    qname: DomainName,
    qtype: RRType,
    msg_id: int = 0,
    recursion_desired: bool = True,
    edns_payload_size: Optional[int] = None,
) -> Message:
    """Build a standard query message.

    *edns_payload_size* advertises EDNS(0) support with that maximum UDP
    payload size.
    """
    return Message(
        msg_id=msg_id,
        flags=Flags(qr=False, rd=recursion_desired),
        question=Question(qname, qtype),
        edns=(
            EdnsInfo(payload_size=edns_payload_size)
            if edns_payload_size is not None
            else None
        ),
    )


def make_response(
    query: Message,
    rcode: Rcode = Rcode.NOERROR,
    authoritative: bool = False,
) -> Message:
    """Build an (initially empty) response mirroring *query*."""
    if query.question is None:
        raise ValueError("cannot respond to a message without a question")
    return Message(
        msg_id=query.msg_id,
        flags=replace(
            query.flags, qr=True, aa=authoritative, ra=False, rcode=rcode
        ),
        question=query.question,
    )
