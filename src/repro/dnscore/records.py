"""Typed resource records and RRsets.

Each record carries a typed ``rdata`` object; rdata classes know how to
render themselves in master-file presentation format and how to encode and
decode their wire form. Name-bearing rdata (NS, CNAME, MX, PTR, SOA) expose
the embedded names so the codec can apply RFC 1035 name compression.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.dnscore.name import DomainName
from repro.dnscore.rrtypes import RRClass, RRType

DEFAULT_TTL = 3600


class RData:
    """Base class for typed record data."""

    rrtype: RRType

    def to_text(self) -> str:
        raise NotImplementedError

    def encode(self, compressor) -> bytes:
        """Encode to wire form. *compressor* resolves embedded names."""
        raise NotImplementedError

    @classmethod
    def decode(cls, reader, rdlength: int) -> "RData":
        raise NotImplementedError


@dataclass(frozen=True)
class AData(RData):
    """IPv4 address record data."""

    address: ipaddress.IPv4Address
    rrtype = RRType.A

    def __post_init__(self) -> None:
        if not isinstance(self.address, ipaddress.IPv4Address):
            object.__setattr__(
                self, "address", ipaddress.IPv4Address(self.address)
            )

    def to_text(self) -> str:
        return str(self.address)

    def encode(self, compressor) -> bytes:
        return self.address.packed

    @classmethod
    def decode(cls, reader, rdlength: int) -> "AData":
        if rdlength != 4:
            raise ValueError(f"A rdata must be 4 octets, got {rdlength}")
        return cls(ipaddress.IPv4Address(reader.read(4)))


@dataclass(frozen=True)
class AAAAData(RData):
    """IPv6 address record data."""

    address: ipaddress.IPv6Address
    rrtype = RRType.AAAA

    def __post_init__(self) -> None:
        if not isinstance(self.address, ipaddress.IPv6Address):
            object.__setattr__(
                self, "address", ipaddress.IPv6Address(self.address)
            )

    def to_text(self) -> str:
        return str(self.address)

    def encode(self, compressor) -> bytes:
        return self.address.packed

    @classmethod
    def decode(cls, reader, rdlength: int) -> "AAAAData":
        if rdlength != 16:
            raise ValueError(f"AAAA rdata must be 16 octets, got {rdlength}")
        return cls(ipaddress.IPv6Address(reader.read(16)))


@dataclass(frozen=True)
class NSData(RData):
    """Name-server record data."""

    nsdname: DomainName
    rrtype = RRType.NS

    def to_text(self) -> str:
        return self.nsdname.to_text(trailing_dot=True)

    def encode(self, compressor) -> bytes:
        return compressor.encode_name(self.nsdname)

    @classmethod
    def decode(cls, reader, rdlength: int) -> "NSData":
        return cls(reader.read_name())


@dataclass(frozen=True)
class CNAMEData(RData):
    """Canonical-name (alias) record data."""

    target: DomainName
    rrtype = RRType.CNAME

    def to_text(self) -> str:
        return self.target.to_text(trailing_dot=True)

    def encode(self, compressor) -> bytes:
        return compressor.encode_name(self.target)

    @classmethod
    def decode(cls, reader, rdlength: int) -> "CNAMEData":
        return cls(reader.read_name())


@dataclass(frozen=True)
class PTRData(RData):
    """Pointer record data (reverse mapping)."""

    ptrdname: DomainName
    rrtype = RRType.PTR

    def to_text(self) -> str:
        return self.ptrdname.to_text(trailing_dot=True)

    def encode(self, compressor) -> bytes:
        return compressor.encode_name(self.ptrdname)

    @classmethod
    def decode(cls, reader, rdlength: int) -> "PTRData":
        return cls(reader.read_name())


@dataclass(frozen=True)
class MXData(RData):
    """Mail-exchange record data."""

    preference: int
    exchange: DomainName
    rrtype = RRType.MX

    def to_text(self) -> str:
        return f"{self.preference} {self.exchange.to_text(trailing_dot=True)}"

    def encode(self, compressor) -> bytes:
        return struct.pack("!H", self.preference) + compressor.encode_name(
            self.exchange
        )

    @classmethod
    def decode(cls, reader, rdlength: int) -> "MXData":
        (preference,) = struct.unpack("!H", reader.read(2))
        return cls(preference, reader.read_name())


@dataclass(frozen=True)
class TXTData(RData):
    """Text record data: one or more character strings."""

    strings: Tuple[bytes, ...]
    rrtype = RRType.TXT

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "strings", tuple(bytes(s) for s in self.strings)
        )
        for chunk in self.strings:
            if len(chunk) > 255:
                raise ValueError("TXT character-string exceeds 255 octets")

    def to_text(self) -> str:
        return " ".join(
            '"' + s.decode("ascii", "backslashreplace") + '"'
            for s in self.strings
        )

    def encode(self, compressor) -> bytes:
        return b"".join(bytes([len(s)]) + s for s in self.strings)

    @classmethod
    def decode(cls, reader, rdlength: int) -> "TXTData":
        end = reader.offset + rdlength
        strings: List[bytes] = []
        while reader.offset < end:
            (length,) = reader.read(1)
            strings.append(reader.read(length))
        return cls(tuple(strings))


@dataclass(frozen=True)
class SOAData(RData):
    """Start-of-authority record data."""

    mname: DomainName
    rname: DomainName
    serial: int
    refresh: int = 7200
    retry: int = 900
    expire: int = 1209600
    minimum: int = 86400
    rrtype = RRType.SOA

    def to_text(self) -> str:
        return (
            f"{self.mname.to_text(trailing_dot=True)} "
            f"{self.rname.to_text(trailing_dot=True)} "
            f"{self.serial} {self.refresh} {self.retry} "
            f"{self.expire} {self.minimum}"
        )

    def encode(self, compressor) -> bytes:
        return (
            compressor.encode_name(self.mname)
            + compressor.encode_name(self.rname)
            + struct.pack(
                "!IIIII",
                self.serial,
                self.refresh,
                self.retry,
                self.expire,
                self.minimum,
            )
        )

    @classmethod
    def decode(cls, reader, rdlength: int) -> "SOAData":
        mname = reader.read_name()
        rname = reader.read_name()
        serial, refresh, retry, expire, minimum = struct.unpack(
            "!IIIII", reader.read(20)
        )
        return cls(mname, rname, serial, refresh, retry, expire, minimum)


@dataclass(frozen=True)
class OpaqueData(RData):
    """Fallback for record types this library does not model natively."""

    type_value: int
    data: bytes

    @property
    def rrtype(self) -> int:  # type: ignore[override]
        return self.type_value

    def to_text(self) -> str:
        return f"\\# {len(self.data)} {self.data.hex()}"

    def encode(self, compressor) -> bytes:
        return self.data


RDATA_CLASSES: Dict[RRType, type] = {
    RRType.A: AData,
    RRType.AAAA: AAAAData,
    RRType.NS: NSData,
    RRType.CNAME: CNAMEData,
    RRType.PTR: PTRData,
    RRType.MX: MXData,
    RRType.TXT: TXTData,
    RRType.SOA: SOAData,
}


@dataclass(frozen=True)
class ResourceRecord:
    """A single DNS resource record: owner name, type, class, TTL, rdata."""

    name: DomainName
    rrtype: RRType
    rdata: RData
    ttl: int = DEFAULT_TTL
    rrclass: RRClass = RRClass.IN

    def __post_init__(self) -> None:
        if isinstance(self.rdata, OpaqueData):
            return
        if self.rdata.rrtype != self.rrtype:
            raise ValueError(
                f"rdata type {self.rdata.rrtype} does not match "
                f"record type {self.rrtype}"
            )

    def to_text(self) -> str:
        """Master-file presentation: ``name ttl class type rdata``."""
        return (
            f"{self.name.to_text(trailing_dot=True)} {self.ttl} "
            f"{self.rrclass.name} {RRType(self.rrtype).name} "
            f"{self.rdata.to_text()}"
        )


@dataclass
class RRset:
    """All records sharing an owner name, class, and type."""

    name: DomainName
    rrtype: RRType
    records: List[ResourceRecord] = field(default_factory=list)

    def add(self, record: ResourceRecord) -> None:
        if record.name != self.name or record.rrtype != self.rrtype:
            raise ValueError("record does not belong to this RRset")
        if record not in self.records:
            self.records.append(record)

    def __iter__(self) -> Iterator[ResourceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    @property
    def ttl(self) -> int:
        return min((r.ttl for r in self.records), default=DEFAULT_TTL)

    def rdata_texts(self) -> List[str]:
        return sorted(r.rdata.to_text() for r in self.records)


def make_record(
    name: str,
    rrtype: RRType,
    value: str,
    ttl: int = DEFAULT_TTL,
) -> ResourceRecord:
    """Convenience constructor from presentation-ish values.

    >>> make_record("www.example.com", RRType.A, "192.0.2.1").rdata.to_text()
    '192.0.2.1'
    """
    owner = DomainName.from_text(name)
    rdata: RData
    if rrtype == RRType.A:
        rdata = AData(ipaddress.IPv4Address(value))
    elif rrtype == RRType.AAAA:
        rdata = AAAAData(ipaddress.IPv6Address(value))
    elif rrtype == RRType.NS:
        rdata = NSData(DomainName.from_text(value))
    elif rrtype == RRType.CNAME:
        rdata = CNAMEData(DomainName.from_text(value))
    elif rrtype == RRType.PTR:
        rdata = PTRData(DomainName.from_text(value))
    elif rrtype == RRType.TXT:
        rdata = TXTData((value.encode("ascii"),))
    elif rrtype == RRType.MX:
        pref_text, exchange = value.split(None, 1)
        rdata = MXData(int(pref_text), DomainName.from_text(exchange))
    else:
        raise ValueError(f"make_record does not support {rrtype!r}")
    return ResourceRecord(owner, rrtype, rdata, ttl=ttl)
