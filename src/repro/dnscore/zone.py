"""Authoritative zone data: record tables, delegations, lookups, zone files.

A :class:`Zone` owns every record at or below its origin, except data below
a delegation point (those names exist only as NS + glue). The lookup method
implements the data-side half of the RFC 1034 algorithm: exact match,
CNAME fallback, delegation detection, and NXDOMAIN/NODATA distinction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.dnscore.name import DomainName
from repro.dnscore.records import (
    DEFAULT_TTL,
    ResourceRecord,
    RRset,
    SOAData,
    make_record,
)
from repro.dnscore.rrtypes import RRType


class ZoneError(ValueError):
    """Raised on structurally invalid zone contents or operations."""


class LookupStatus(enum.Enum):
    """Outcome classes for a zone lookup."""

    SUCCESS = "success"
    CNAME = "cname"
    DELEGATION = "delegation"
    NXDOMAIN = "nxdomain"
    NODATA = "nodata"


@dataclass
class LookupResult:
    """Result of :meth:`Zone.lookup`."""

    status: LookupStatus
    rrset: Optional[RRset] = None
    #: NS rrset of the delegation point when status is DELEGATION.
    delegation: Optional[RRset] = None
    #: Glue address records accompanying a delegation.
    glue: List[ResourceRecord] = field(default_factory=list)


class Zone:
    """A DNS zone: an origin, an SOA, and a table of RRsets."""

    def __init__(self, origin: DomainName, soa: Optional[SOAData] = None):
        self.origin = origin
        self._rrsets: Dict[Tuple[DomainName, RRType], RRset] = {}
        #: Names that exist (possibly only as ancestors of records).
        self._names: Dict[DomainName, int] = {}
        if soa is not None:
            self.add_record(
                ResourceRecord(origin, RRType.SOA, soa, ttl=DEFAULT_TTL)
            )

    # -- content management ------------------------------------------------

    def add_record(self, record: ResourceRecord) -> None:
        """Add *record*; owner must be at or below the zone origin."""
        if not record.name.is_subdomain_of(self.origin):
            raise ZoneError(
                f"{record.name} is outside zone {self.origin}"
            )
        key = (record.name, record.rrtype)
        existing_cname = self._rrsets.get((record.name, RRType.CNAME))
        if record.rrtype != RRType.CNAME and existing_cname:
            raise ZoneError(
                f"{record.name} already has a CNAME; no other data allowed"
            )
        if record.rrtype == RRType.CNAME and any(
            rrtype != RRType.CNAME and rrset
            for (name, rrtype), rrset in self._rrsets.items()
            if name == record.name
        ):
            raise ZoneError(
                f"cannot add CNAME at {record.name}: other data exists"
            )
        rrset = self._rrsets.get(key)
        if rrset is None:
            rrset = RRset(record.name, record.rrtype)
            self._rrsets[key] = rrset
        before = len(rrset)
        rrset.add(record)
        if len(rrset) > before:
            self._register_name(record.name)

    def add(self, name: str, rrtype: RRType, value: str,
            ttl: int = DEFAULT_TTL) -> ResourceRecord:
        """Convenience: build and add a record from presentation values."""
        record = make_record(name, rrtype, value, ttl=ttl)
        self.add_record(record)
        return record

    def remove_rrset(self, name: DomainName, rrtype: RRType) -> bool:
        """Remove all records of *rrtype* at *name*; True if any existed."""
        rrset = self._rrsets.pop((name, rrtype), None)
        if rrset is None or not rrset:
            return False
        self._unregister_name(name)
        return True

    def remove_name(self, name: DomainName) -> int:
        """Remove every RRset owned by *name*; returns how many."""
        keys = [key for key in self._rrsets if key[0] == name]
        for key in keys:
            self._rrsets.pop(key)
            self._unregister_name(name)
        return len(keys)

    def replace(self, name: str, rrtype: RRType, values: Iterable[str],
                ttl: int = DEFAULT_TTL) -> None:
        """Atomically replace the RRset at *name*/*rrtype* with *values*."""
        owner = DomainName.from_text(name)
        self.remove_rrset(owner, rrtype)
        for value in values:
            self.add(name, rrtype, value, ttl=ttl)

    def _register_name(self, name: DomainName) -> None:
        cursor = name
        while True:
            self._names[cursor] = self._names.get(cursor, 0) + 1
            if cursor == self.origin:
                break
            cursor = cursor.parent()

    def _unregister_name(self, name: DomainName) -> None:
        cursor = name
        while True:
            count = self._names.get(cursor, 0) - 1
            if count <= 0:
                self._names.pop(cursor, None)
            else:
                self._names[cursor] = count
            if cursor == self.origin:
                break
            cursor = cursor.parent()

    # -- accessors -----------------------------------------------------------

    @property
    def soa(self) -> Optional[SOAData]:
        rrset = self._rrsets.get((self.origin, RRType.SOA))
        if rrset and rrset.records:
            return rrset.records[0].rdata  # type: ignore[return-value]
        return None

    def get_rrset(self, name: DomainName, rrtype: RRType) -> Optional[RRset]:
        rrset = self._rrsets.get((name, rrtype))
        return rrset if rrset else None

    def names(self) -> Iterator[DomainName]:
        """Every owner name with at least one record."""
        seen = set()
        for name, _ in self._rrsets:
            if name not in seen:
                seen.add(name)
                yield name

    def records(self) -> Iterator[ResourceRecord]:
        for rrset in self._rrsets.values():
            yield from rrset

    def __len__(self) -> int:
        return sum(len(rrset) for rrset in self._rrsets.values())

    # -- the RFC 1034 data-side lookup ---------------------------------------

    def _find_delegation(self, qname: DomainName) -> Optional[RRset]:
        """The NS rrset of the closest delegation point above *qname*.

        The zone apex NS rrset is authoritative data, not a delegation.
        """
        depth = len(self.origin) + 1
        while depth <= len(qname):
            _, candidate = qname.split(depth)
            if candidate == qname and depth == len(qname):
                # A delegation exactly at qname counts (unless apex).
                pass
            rrset = self._rrsets.get((candidate, RRType.NS))
            if rrset and candidate != self.origin:
                return rrset
            depth += 1
        return None

    def lookup(self, qname: DomainName, qtype: RRType) -> LookupResult:
        """Look *qname*/*qtype* up in this zone's data.

        Callers must ensure *qname* is at or below the origin.
        """
        if not qname.is_subdomain_of(self.origin):
            raise ZoneError(f"{qname} is outside zone {self.origin}")

        delegation = self._find_delegation(qname)
        if delegation is not None and not (
            qname == delegation.name and qtype == RRType.NS
        ):
            glue = self._glue_for(delegation)
            return LookupResult(
                LookupStatus.DELEGATION, delegation=delegation, glue=glue
            )

        exact = self._rrsets.get((qname, qtype))
        if exact:
            return LookupResult(LookupStatus.SUCCESS, rrset=exact)

        if qtype != RRType.CNAME:
            cname = self._rrsets.get((qname, RRType.CNAME))
            if cname:
                return LookupResult(LookupStatus.CNAME, rrset=cname)

        if qname in self._names:
            return LookupResult(LookupStatus.NODATA)

        wildcard = self._wildcard_match(qname, qtype)
        if wildcard is not None:
            return wildcard
        return LookupResult(LookupStatus.NXDOMAIN)

    def _wildcard_match(
        self, qname: DomainName, qtype: RRType
    ) -> Optional[LookupResult]:
        """RFC 1034 §4.3.3 wildcard synthesis.

        When *qname* does not exist, a ``*`` label directly below the
        closest existing ancestor matches; synthesized records carry the
        query name as owner. Parking services (the Sedo pattern) publish
        exactly such zones.
        """
        if qname == self.origin:
            return None
        ancestor = qname.parent()
        while True:
            if ancestor in self._names:
                wildcard_name = ancestor.prepend("*")
                exact = self._rrsets.get((wildcard_name, qtype))
                cname = (
                    self._rrsets.get((wildcard_name, RRType.CNAME))
                    if qtype != RRType.CNAME
                    else None
                )
                source = exact or cname
                if source:
                    synthesized = RRset(qname, source.rrtype)
                    for record in source:
                        synthesized.add(
                            ResourceRecord(
                                qname,
                                record.rrtype,
                                record.rdata,
                                ttl=record.ttl,
                                rrclass=record.rrclass,
                            )
                        )
                    status = (
                        LookupStatus.SUCCESS if exact else LookupStatus.CNAME
                    )
                    return LookupResult(status, rrset=synthesized)
                if wildcard_name in self._names:
                    return LookupResult(LookupStatus.NODATA)
                return None
            if ancestor == self.origin:
                return None
            ancestor = ancestor.parent()

    def _glue_for(self, delegation: RRset) -> List[ResourceRecord]:
        glue: List[ResourceRecord] = []
        for record in delegation:
            nsdname = record.rdata.nsdname  # type: ignore[union-attr]
            if not nsdname.is_subdomain_of(self.origin):
                continue
            for rrtype in (RRType.A, RRType.AAAA):
                rrset = self._rrsets.get((nsdname, rrtype))
                if rrset:
                    glue.extend(rrset)
        return glue

    # -- serialization ---------------------------------------------------------

    def to_text(self) -> str:
        """Render as a master file (one record per line, sorted)."""
        lines = [f"$ORIGIN {self.origin.to_text(trailing_dot=True)}"]
        records = sorted(
            self.records(),
            key=lambda r: (r.name, int(r.rrtype), r.rdata.to_text()),
        )
        lines.extend(record.to_text() for record in records)
        return "\n".join(lines) + "\n"


def parse_zone_text(text: str) -> Zone:
    """Parse the subset of master-file syntax produced by ``Zone.to_text``.

    Supports ``$ORIGIN``, relative and absolute owner names, optional TTL
    and class fields, and comments introduced by ``;``.
    """
    origin: Optional[DomainName] = None
    pending: List[Tuple[DomainName, RRType, str, int]] = []
    for raw_line in text.splitlines():
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith("$ORIGIN"):
            _, _, value = line.partition(" ")
            origin = DomainName.from_text(value.strip())
            continue
        if line.startswith("$"):
            raise ZoneError(f"unsupported directive {line.split()[0]!r}")
        fields = line.split()
        if len(fields) < 4:
            raise ZoneError(f"malformed record line {line!r}")
        owner_text = fields[0]
        rest = fields[1:]
        ttl = DEFAULT_TTL
        if rest and rest[0].isdigit():
            ttl = int(rest[0])
            rest = rest[1:]
        if rest and rest[0].upper() in ("IN", "CH"):
            rest = rest[1:]
        if len(rest) < 2:
            raise ZoneError(f"record line missing type/rdata: {line!r}")
        rrtype = RRType.from_text(rest[0])
        rdata_text = " ".join(rest[1:])
        if owner_text.endswith("."):
            owner = DomainName.from_text(owner_text)
        else:
            if origin is None:
                raise ZoneError("relative owner name before $ORIGIN")
            owner = DomainName.from_text(owner_text).concat(origin)
        pending.append((owner, rrtype, rdata_text, ttl))

    if origin is None:
        soa_owners = [p[0] for p in pending if p[1] == RRType.SOA]
        if not soa_owners:
            raise ZoneError("zone text has neither $ORIGIN nor SOA")
        origin = soa_owners[0]

    zone = Zone(origin)
    for owner, rrtype, rdata_text, ttl in pending:
        if rrtype == RRType.SOA:
            parts = rdata_text.split()
            if len(parts) != 7:
                raise ZoneError(f"SOA rdata needs 7 fields: {rdata_text!r}")
            soa = SOAData(
                DomainName.from_text(parts[0]),
                DomainName.from_text(parts[1]),
                *(int(p) for p in parts[2:]),
            )
            zone.add_record(ResourceRecord(owner, RRType.SOA, soa, ttl=ttl))
        else:
            value = rdata_text
            if rrtype == RRType.TXT:
                value = value.strip().strip('"')
            zone.add(owner.to_text(), rrtype, value, ttl=ttl)
    return zone
