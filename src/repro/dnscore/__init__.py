"""A self-contained DNS substrate.

This package implements the pieces of the Domain Name System that the
paper's measurement pipeline depends on: domain names, typed resource
records, RFC 1035 wire-format encoding/decoding (with name compression),
zones with master-file parsing, the RFC 1034 authoritative-server lookup
algorithm, and an iterative resolver with CNAME chasing that runs over a
simulated UDP-like transport.

The substrate is deliberately complete enough that a measurement worker can
perform a *real* resolution — root referral, TLD referral, authoritative
answer, cross-zone CNAME expansion — entirely inside the process.
"""

from repro.dnscore.name import DomainName, InvalidNameError
from repro.dnscore.rrtypes import RRClass, RRType, Opcode, Rcode
from repro.dnscore.records import (
    AData,
    AAAAData,
    CNAMEData,
    MXData,
    NSData,
    PTRData,
    RRset,
    ResourceRecord,
    SOAData,
    TXTData,
)
from repro.dnscore.message import (
    EdnsInfo,
    Flags,
    Message,
    Question,
    make_query,
    make_response,
)
from repro.dnscore.wire import WireDecodeError, decode_message, encode_message
from repro.dnscore.zone import Zone, ZoneError, parse_zone_text
from repro.dnscore.server import AuthoritativeServer
from repro.dnscore.transport import SimulatedNetwork, TransportError
from repro.dnscore.resolver import (
    IterativeResolver,
    ResolutionError,
    ResolutionResult,
    ResolverCache,
    StubResolver,
)

__all__ = [
    "AAAAData",
    "AData",
    "AuthoritativeServer",
    "CNAMEData",
    "DomainName",
    "EdnsInfo",
    "Flags",
    "InvalidNameError",
    "IterativeResolver",
    "MXData",
    "Message",
    "NSData",
    "Opcode",
    "PTRData",
    "Question",
    "RRClass",
    "RRType",
    "RRset",
    "Rcode",
    "ResolutionError",
    "ResolutionResult",
    "ResolverCache",
    "ResourceRecord",
    "SOAData",
    "SimulatedNetwork",
    "StubResolver",
    "TXTData",
    "TransportError",
    "WireDecodeError",
    "Zone",
    "ZoneError",
    "decode_message",
    "encode_message",
    "make_query",
    "make_response",
    "parse_zone_text",
]
