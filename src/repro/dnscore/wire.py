"""RFC 1035 wire-format encoding and decoding, with name compression.

The encoder maintains a compression table mapping name suffixes to the
offset where they were first written, emitting 2-octet pointers for repeats.
The decoder follows pointers with loop protection (a pointer must always
point strictly backwards) and enforces message bounds throughout.
"""

from __future__ import annotations

import struct
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.dnscore.name import DomainName, InvalidNameError
from repro.dnscore.message import EdnsInfo, Flags, Message, Question
from repro.dnscore.records import (
    OpaqueData,
    RDATA_CLASSES,
    ResourceRecord,
)
from repro.dnscore.rrtypes import RRClass, RRType

MAX_UDP_PAYLOAD = 4096
_POINTER_MASK = 0xC000


class WireDecodeError(ValueError):
    """Raised when a wire message is malformed."""


#: Public alias: *any* decoder failure is a WireError — the contract the
#: fuzz suite enforces (never IndexError / struct.error / KeyError).
WireError = WireDecodeError


class _Compressor:
    """Accumulates output bytes and the name-compression table."""

    def __init__(self) -> None:
        self._chunks: List[bytes] = []
        self._length = 0
        self._table: Dict[Tuple[bytes, ...], int] = {}

    @property
    def length(self) -> int:
        return self._length

    def write(self, data: bytes) -> None:
        self._chunks.append(data)
        self._length += len(data)

    def encode_name(self, name: DomainName) -> bytes:
        """Encode *name*, registering/reusing compression offsets.

        Returns the bytes for the name but does **not** write them; callers
        embed the result inside rdata or section bodies, then write. Offsets
        are registered relative to the current output position, so callers
        must write the returned bytes immediately.
        """
        out = bytearray()
        labels = name.labels
        for index in range(len(labels)):
            suffix = labels[index:]
            offset = self._table.get(suffix)
            if offset is not None:
                out += struct.pack("!H", _POINTER_MASK | offset)
                return bytes(out)
            position = self._length + len(out)
            if position < _POINTER_MASK:
                self._table[suffix] = position
            label = labels[index]
            out += bytes([len(label)]) + label
        out += b"\x00"
        return bytes(out)

    def write_name(self, name: DomainName) -> None:
        self.write(self.encode_name(name))

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)


class _Reader:
    """Bounds-checked reader over a wire message with pointer chasing."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self.offset = 0

    def read(self, count: int) -> bytes:
        if self.offset + count > len(self._data):
            raise WireDecodeError("truncated message")
        chunk = self._data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def read_u16(self) -> int:
        return struct.unpack("!H", self.read(2))[0]

    def read_u32(self) -> int:
        return struct.unpack("!I", self.read(4))[0]

    def read_name(self) -> DomainName:
        labels, self.offset = self._read_name_at(self.offset)
        return DomainName(labels)

    def _read_name_at(self, offset: int) -> Tuple[List[bytes], int]:
        """Read a (possibly compressed) name starting at *offset*.

        Returns the labels and the offset just past the name's in-place
        representation (pointers count as two octets).
        """
        labels: List[bytes] = []
        jumps = 0
        cursor = offset
        end_offset = -1
        while True:
            if cursor >= len(self._data):
                raise WireDecodeError("name runs past end of message")
            length = self._data[cursor]
            if length & 0xC0 == 0xC0:
                if cursor + 1 >= len(self._data):
                    raise WireDecodeError("truncated compression pointer")
                pointer = (
                    struct.unpack("!H", self._data[cursor : cursor + 2])[0]
                    & ~_POINTER_MASK
                )
                if end_offset < 0:
                    end_offset = cursor + 2
                if pointer >= cursor:
                    raise WireDecodeError("forward compression pointer")
                jumps += 1
                if jumps > 64:
                    raise WireDecodeError("compression pointer loop")
                cursor = pointer
                continue
            if length & 0xC0:
                raise WireDecodeError(f"bad label length octet {length:#x}")
            cursor += 1
            if length == 0:
                break
            if cursor + length > len(self._data):
                raise WireDecodeError("label runs past end of message")
            labels.append(self._data[cursor : cursor + length])
            cursor += length
        if end_offset < 0:
            end_offset = cursor
        if len(labels) > 127:
            raise WireDecodeError("too many labels")
        try:
            DomainName(labels)
        except InvalidNameError as exc:
            raise WireDecodeError(str(exc)) from exc
        return labels, end_offset


def _encode_record(record: ResourceRecord, compressor: _Compressor) -> None:
    compressor.write_name(record.name)
    type_value = int(record.rrtype)
    compressor.write(
        struct.pack("!HHI", type_value, int(record.rrclass), record.ttl)
    )
    # rdata encoding may itself register compression offsets, which are
    # computed relative to the position *after* the 2-octet RDLENGTH field.
    # To keep offsets correct we encode rdata against a placeholder position:
    # write RDLENGTH after encoding by reserving its width up front.
    placeholder = _RdlengthScope(compressor)
    rdata_bytes = record.rdata.encode(placeholder)
    compressor.write(struct.pack("!H", len(rdata_bytes)))
    compressor.write(rdata_bytes)


class _RdlengthScope:
    """Compressor proxy that offsets positions past a pending RDLENGTH.

    Rdata is encoded before RDLENGTH is written, but its bytes will land two
    octets later in the output; embedded-name compression offsets must
    account for that.
    """

    def __init__(self, compressor: _Compressor) -> None:
        self._compressor = compressor
        self._written = 0

    @property
    def length(self) -> int:
        return self._compressor.length + 2 + self._written

    def encode_name(self, name: DomainName) -> bytes:
        encoded = _encode_with_position(
            self._compressor, name, self.length
        )
        self._written += len(encoded)
        return encoded


def _encode_with_position(
    compressor: _Compressor, name: DomainName, position: int
) -> bytes:
    """Encode *name* as if output starts at *position* in the message."""
    out = bytearray()
    labels = name.labels
    for index in range(len(labels)):
        suffix = labels[index:]
        offset = compressor._table.get(suffix)
        if offset is not None:
            out += struct.pack("!H", _POINTER_MASK | offset)
            return bytes(out)
        here = position + len(out)
        if here < _POINTER_MASK:
            compressor._table[suffix] = here
        label = labels[index]
        out += bytes([len(label)]) + label
    out += b"\x00"
    return bytes(out)


def encode_message(
    message: Message, max_size: Optional[int] = None
) -> bytes:
    """Encode *message* to its RFC 1035 wire representation.

    With *max_size* (a UDP payload limit), an over-long response is
    re-encoded with empty record sections and the TC bit set, telling the
    client to retry over a stream transport.
    """
    wire = _encode_once(message)
    if max_size is not None and len(wire) > max_size:
        truncated = Message(
            msg_id=message.msg_id,
            flags=replace(message.flags, tc=True),
            question=message.question,
            edns=message.edns,
        )
        wire = _encode_once(truncated)
    return wire


def _encode_once(message: Message) -> bytes:
    compressor = _Compressor()
    question_count = 1 if message.question is not None else 0
    additional_count = len(message.additional)
    if message.edns is not None:
        additional_count += 1  # the OPT pseudo-RR
    compressor.write(
        struct.pack(
            "!HHHHHH",
            message.msg_id & 0xFFFF,
            message.flags.pack(),
            question_count,
            len(message.answers),
            len(message.authority),
            additional_count,
        )
    )
    if message.question is not None:
        compressor.write_name(message.question.qname)
        compressor.write(
            struct.pack(
                "!HH",
                int(message.question.qtype),
                int(message.question.qclass),
            )
        )
    for section in (message.answers, message.authority, message.additional):
        for record in section:
            _encode_record(record, compressor)
    if message.edns is not None:
        _encode_opt(message.edns, compressor)
    return compressor.getvalue()


def _encode_opt(edns, compressor: _Compressor) -> None:
    """The OPT pseudo-RR: root owner; CLASS = payload size; TTL = flags."""
    compressor.write(b"\x00")  # root owner name
    ttl = (edns.version << 16) | (edns.flags & 0xFFFF)
    compressor.write(
        struct.pack(
            "!HHIH",
            int(RRType.OPT),
            edns.payload_size,
            ttl,
            len(edns.options),
        )
    )
    compressor.write(edns.options)


def _decode_record(reader: _Reader):
    name = reader.read_name()
    type_value = reader.read_u16()
    class_value = reader.read_u16()
    ttl = reader.read_u32()
    rdlength = reader.read_u16()
    end = reader.offset + rdlength
    if end > len(reader._data):
        raise WireDecodeError("rdata runs past end of message")
    if type_value == int(RRType.OPT):
        # EDNS(0): CLASS is the payload size, TTL packs version/flags.
        if not name.is_root():
            raise WireDecodeError("OPT owner must be the root name")
        options = reader.read(rdlength)
        try:
            return EdnsInfo(
                payload_size=max(class_value, 512),
                version=(ttl >> 16) & 0xFF,
                flags=ttl & 0xFFFF,
                options=options,
            )
        except ValueError as exc:
            raise WireDecodeError(f"bad OPT record: {exc}") from exc
    try:
        rrclass = RRClass(class_value)
    except ValueError as exc:
        # Found by fuzzing: an unknown class leaked a plain ValueError
        # out of the typed WireDecodeError contract.
        raise WireDecodeError(
            f"unknown RR class {class_value}"
        ) from exc
    try:
        rrtype = RRType(type_value)
        rdata_cls = RDATA_CLASSES.get(rrtype)
    except ValueError:
        rrtype = None
        rdata_cls = None
    if rdata_cls is None:
        rdata = OpaqueData(type_value, reader.read(rdlength))
        record_type = rrtype if rrtype is not None else type_value
        record = ResourceRecord(
            name, record_type, rdata, ttl=ttl, rrclass=rrclass
        )
    else:
        try:
            rdata = rdata_cls.decode(reader, rdlength)
        except (ValueError, struct.error) as exc:
            raise WireDecodeError(f"bad {rrtype.name} rdata: {exc}") from exc
        if reader.offset != end:
            raise WireDecodeError(
                f"{rrtype.name} rdata length mismatch "
                f"(expected end {end}, at {reader.offset})"
            )
        record = ResourceRecord(
            name, rrtype, rdata, ttl=ttl, rrclass=rrclass
        )
    return record


def decode_message(data: bytes) -> Message:
    """Decode wire *data* into a :class:`Message`.

    Raises :class:`WireDecodeError` on any malformation.
    """
    if len(data) < 12:
        raise WireDecodeError("message shorter than header")
    reader = _Reader(data)
    msg_id = reader.read_u16()
    try:
        flags = Flags.unpack(reader.read_u16())
    except ValueError as exc:
        raise WireDecodeError(f"bad flags: {exc}") from exc
    qdcount = reader.read_u16()
    ancount = reader.read_u16()
    nscount = reader.read_u16()
    arcount = reader.read_u16()
    if qdcount > 1:
        raise WireDecodeError("multiple questions are not supported")
    question = None
    if qdcount:
        qname = reader.read_name()
        try:
            qtype = RRType(reader.read_u16())
            qclass = RRClass(reader.read_u16())
        except ValueError as exc:
            raise WireDecodeError(f"bad question: {exc}") from exc
        question = Question(qname, qtype, qclass)
    message = Message(msg_id=msg_id, flags=flags, question=question)
    for count, section in (
        (ancount, message.answers),
        (nscount, message.authority),
        (arcount, message.additional),
    ):
        for _ in range(count):
            decoded = _decode_record(reader)
            if isinstance(decoded, EdnsInfo):
                if message.edns is not None:
                    raise WireDecodeError("multiple OPT records")
                message.edns = decoded
            else:
                section.append(decoded)
    if reader.offset != len(data):
        raise WireDecodeError(
            f"{len(data) - reader.offset} trailing octets after message"
        )
    return message
