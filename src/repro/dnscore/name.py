"""Domain names as immutable label sequences.

Names are stored as tuples of lowercase byte-string labels, *without* the
root label; the root name is the empty tuple. Comparison is therefore
case-insensitive, matching DNS semantics (RFC 4343), and names are hashable
so they can key zone tables and caches.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 253  # presentation form, excluding trailing dot

#: Minimal public-suffix list for the TLDs the study covers (plus a few
#: multi-label suffixes so SLD extraction is exercised on the general case).
DEFAULT_PUBLIC_SUFFIXES = frozenset(
    {
        "com",
        "net",
        "org",
        "nl",
        "io",
        "biz",
        "info",
        "us",
        "co.uk",
        "org.uk",
        "ac.uk",
        "com.au",
        "co.jp",
    }
)


class InvalidNameError(ValueError):
    """Raised when text or wire data does not form a valid domain name."""


def _validate_label(label: bytes) -> bytes:
    if not label:
        raise InvalidNameError("empty label")
    if len(label) > MAX_LABEL_LENGTH:
        raise InvalidNameError(
            f"label {label!r} exceeds {MAX_LABEL_LENGTH} octets"
        )
    return label.lower()


class DomainName:
    """An immutable, case-insensitive DNS domain name.

    >>> DomainName.from_text("WWW.Example.COM")
    DomainName('www.example.com')
    >>> DomainName.from_text("www.example.com").parent()
    DomainName('example.com')
    """

    __slots__ = ("_labels", "_hash")

    def __init__(self, labels: Iterable[bytes] = ()):
        self._labels: Tuple[bytes, ...] = tuple(
            _validate_label(bytes(label)) for label in labels
        )
        if sum(len(label) + 1 for label in self._labels) - 1 > MAX_NAME_LENGTH:
            raise InvalidNameError("name exceeds maximum length")
        self._hash = hash(self._labels)

    # -- constructors ----------------------------------------------------

    @classmethod
    def root(cls) -> "DomainName":
        """The DNS root (empty) name."""
        return _ROOT

    @classmethod
    def from_text(cls, text: str) -> "DomainName":
        """Parse a presentation-format name such as ``www.example.com.``."""
        text = text.strip()
        if text in ("", "."):
            return _ROOT
        if text.endswith("."):
            text = text[:-1]
        if not text:
            raise InvalidNameError("name consists only of a dot")
        try:
            raw = text.encode("ascii")
        except UnicodeEncodeError as exc:
            raise InvalidNameError(f"non-ASCII name {text!r}") from exc
        labels = raw.split(b".")
        return cls(labels)

    # -- fundamental properties ------------------------------------------

    @property
    def labels(self) -> Tuple[bytes, ...]:
        return self._labels

    def is_root(self) -> bool:
        return not self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._labels)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DomainName):
            return NotImplemented
        return self._labels == other._labels

    def __lt__(self, other: "DomainName") -> bool:
        # Canonical DNS ordering: compare from the rightmost label.
        return tuple(reversed(self._labels)) < tuple(reversed(other._labels))

    def __repr__(self) -> str:
        return f"DomainName({self.to_text()!r})"

    def __str__(self) -> str:
        return self.to_text()

    # -- conversions ------------------------------------------------------

    def to_text(self, trailing_dot: bool = False) -> str:
        """Render in presentation format; the root renders as ``.``."""
        if not self._labels:
            return "."
        text = ".".join(label.decode("ascii") for label in self._labels)
        return text + "." if trailing_dot else text

    # -- structural operations ---------------------------------------------

    def parent(self) -> "DomainName":
        """The name with the leftmost label removed.

        Raises :class:`InvalidNameError` on the root name.
        """
        if not self._labels:
            raise InvalidNameError("the root name has no parent")
        return DomainName(self._labels[1:])

    def concat(self, suffix: "DomainName") -> "DomainName":
        """This name prepended to *suffix* (``www`` + ``example.com``)."""
        return DomainName(self._labels + suffix._labels)

    def prepend(self, label: str) -> "DomainName":
        """A new name with *label* added on the left."""
        return DomainName((label.encode("ascii"),) + self._labels)

    def is_subdomain_of(self, other: "DomainName") -> bool:
        """True if *self* equals *other* or sits below it in the tree."""
        if len(other._labels) > len(self._labels):
            return False
        if not other._labels:
            return True
        return self._labels[-len(other._labels):] == other._labels

    def relativize(self, origin: "DomainName") -> "DomainName":
        """Strip *origin* from the right of this name.

        Raises :class:`InvalidNameError` if *self* is not under *origin*.
        """
        if not self.is_subdomain_of(origin):
            raise InvalidNameError(f"{self} is not under {origin}")
        if not origin._labels:
            return self
        return DomainName(self._labels[: -len(origin._labels)])

    def split(self, depth: int) -> Tuple["DomainName", "DomainName"]:
        """Split into ``(prefix, suffix)`` where suffix has *depth* labels."""
        if depth < 0 or depth > len(self._labels):
            raise InvalidNameError(f"cannot split {self} at depth {depth}")
        if depth == 0:
            return self, _ROOT
        return (
            DomainName(self._labels[:-depth]),
            DomainName(self._labels[-depth:]),
        )

    # -- study-specific helpers ---------------------------------------------

    def public_suffix(
        self, suffixes: frozenset = DEFAULT_PUBLIC_SUFFIXES
    ) -> Optional["DomainName"]:
        """The longest matching public suffix of this name, if any."""
        best: Optional[DomainName] = None
        for depth in range(1, len(self._labels) + 1):
            candidate = DomainName(self._labels[-depth:])
            if candidate.to_text() in suffixes:
                best = candidate
        return best

    def sld(
        self, suffixes: frozenset = DEFAULT_PUBLIC_SUFFIXES
    ) -> Optional["DomainName"]:
        """The registrable second-level domain of this name.

        ``www.shop.example.co.uk`` → ``example.co.uk``; returns ``None`` when
        the name is itself a public suffix or matches no known suffix. The
        paper detects DPS references by the SLD contained in CNAME and NS
        records (§3.3), which is exactly this operation.
        """
        suffix = self.public_suffix(suffixes)
        if suffix is None or len(suffix) >= len(self._labels):
            return None
        return DomainName(self._labels[-(len(suffix) + 1):])


#: The singleton root name, shared by :meth:`DomainName.root`.
_ROOT = DomainName(())
