"""Stub and iterative DNS resolvers over the simulated network.

The iterative resolver starts from root hints and follows referrals down the
delegation tree, resolving out-of-bailiwick name-server names as needed, and
chases CNAME chains across zones — producing the *full CNAME expansion* that
the paper's detection methodology consumes (§3.1: "All fields from the
answer section of a DNS response are stored, which includes CNAMEs and their
full expansions").
"""

from __future__ import annotations

import ipaddress
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dnscore.name import DomainName
from repro.dnscore.message import Flags, Message, make_query
from repro.dnscore.records import ResourceRecord
from repro.dnscore.rrtypes import Rcode, RRType
from repro.dnscore.transport import IPAddress, SimulatedNetwork, TransportError
from repro.dnscore.wire import WireDecodeError, decode_message, encode_message

MAX_REFERRALS = 24
MAX_CNAME_DEPTH = 12
RETRIES_PER_SERVER = 2


class ResolutionError(Exception):
    """Raised when a name cannot be resolved at all (network failure)."""


@dataclass
class ResolutionResult:
    """Outcome of a resolution: rcode plus the accumulated answer chain."""

    qname: DomainName
    qtype: RRType
    rcode: Rcode
    #: Every answer-section record gathered along the CNAME chain, in order.
    answers: List[ResourceRecord] = field(default_factory=list)
    #: Authority-section records from the final authoritative response.
    authority: List[ResourceRecord] = field(default_factory=list)
    #: How many queries were sent on the wire for this resolution.
    queries_sent: int = 0

    @property
    def cname_chain(self) -> List[DomainName]:
        """The CNAME targets in expansion order."""
        return [
            r.rdata.target  # type: ignore[union-attr]
            for r in self.answers
            if r.rrtype == RRType.CNAME
        ]

    def addresses(self) -> List[str]:
        """All A/AAAA addresses in the final expansion, as text."""
        return [
            r.rdata.to_text()
            for r in self.answers
            if r.rrtype in (RRType.A, RRType.AAAA)
        ]

    def rrs(self, rrtype: RRType) -> List[ResourceRecord]:
        return [r for r in self.answers if r.rrtype == rrtype]


#: Fallback negative-cache TTL when the response carries no SOA (RFC 2308
#: recommends capping negative TTLs anyway).
DEFAULT_NEGATIVE_TTL = 300


class ResolverCache:
    """A TTL-aware positive and negative cache keyed by (name, type).

    Negative entries (RFC 2308) remember NXDOMAIN/NODATA outcomes with a
    TTL taken from the authority SOA. Time is a logical clock advanced by
    the caller, which keeps resolution fully deterministic in tests and
    simulations.
    """

    def __init__(self) -> None:
        self._entries: Dict[
            Tuple[DomainName, RRType], Tuple[float, List[ResourceRecord]]
        ] = {}
        self._negative: Dict[
            Tuple[DomainName, RRType], Tuple[float, Rcode]
        ] = {}
        self.hits = 0
        self.misses = 0
        self.negative_hits = 0

    def get(
        self, name: DomainName, rrtype: RRType, now: float
    ) -> Optional[List[ResourceRecord]]:
        entry = self._entries.get((name, rrtype))
        if entry is None:
            self.misses += 1
            return None
        expires, records = entry
        if now >= expires:
            del self._entries[(name, rrtype)]
            self.misses += 1
            return None
        self.hits += 1
        return list(records)

    def put(
        self,
        name: DomainName,
        rrtype: RRType,
        records: Sequence[ResourceRecord],
        now: float,
    ) -> None:
        if not records:
            return
        ttl = min(r.ttl for r in records)
        self._entries[(name, rrtype)] = (now + ttl, list(records))

    def get_negative(
        self, name: DomainName, rrtype: RRType, now: float
    ) -> Optional[Rcode]:
        """The cached negative outcome for (name, type), if unexpired."""
        entry = self._negative.get((name, rrtype))
        if entry is None:
            return None
        expires, rcode = entry
        if now >= expires:
            del self._negative[(name, rrtype)]
            return None
        self.negative_hits += 1
        return rcode

    def put_negative(
        self,
        name: DomainName,
        rrtype: RRType,
        rcode: Rcode,
        ttl: int,
        now: float,
    ) -> None:
        if ttl <= 0:
            return
        self._negative[(name, rrtype)] = (now + ttl, rcode)

    def flush(self) -> None:
        self._entries.clear()
        self._negative.clear()

    def __len__(self) -> int:
        return len(self._entries) + len(self._negative)


class StubResolver:
    """Sends single queries to a fixed server address, over the wire."""

    def __init__(self, network: SimulatedNetwork, server: IPAddress):
        self._network = network
        self._server = ipaddress.ip_address(server)
        self._msg_ids = itertools.count(1)

    def query(self, qname: DomainName, qtype: RRType) -> Message:
        """One wire round-trip; raises ResolutionError on network failure."""
        request = make_query(qname, qtype, msg_id=next(self._msg_ids) & 0xFFFF)
        payload = encode_message(request)
        last_error: Optional[Exception] = None
        for _ in range(RETRIES_PER_SERVER):
            try:
                raw = self._network.query(self._server, payload)
            except TransportError as exc:
                last_error = exc
                continue
            try:
                response = decode_message(raw)
            except WireDecodeError as exc:
                # A garbled response is operationally a lost one: retry.
                last_error = exc
                continue
            if response.msg_id != request.msg_id:
                raise ResolutionError("response id mismatch")
            return response
        raise ResolutionError(f"no response from {self._server}: {last_error}")


class IterativeResolver:
    """Full iterative resolution from root hints, with a positive cache."""

    def __init__(
        self,
        network: SimulatedNetwork,
        root_servers: Sequence[IPAddress],
        cache: Optional[ResolverCache] = None,
        edns_payload_size: Optional[int] = None,
    ):
        if not root_servers:
            raise ValueError("at least one root server is required")
        self._network = network
        self._roots = [ipaddress.ip_address(a) for a in root_servers]
        self._cache = cache
        self._edns_payload_size = edns_payload_size
        self._msg_ids = itertools.count(1)
        self.clock = 0.0

    # -- public API ------------------------------------------------------------

    def resolve(
        self, qname: DomainName, qtype: RRType
    ) -> ResolutionResult:
        """Resolve *qname*/*qtype*, chasing CNAMEs across zones."""
        result = ResolutionResult(qname=qname, qtype=qtype, rcode=Rcode.NOERROR)
        current = qname
        seen: set = set()
        for _ in range(MAX_CNAME_DEPTH):
            if current in seen:
                raise ResolutionError(f"CNAME loop at {current}")
            seen.add(current)
            response = self._resolve_once(current, qtype, result)
            result.rcode = response.flags.rcode
            result.authority = list(response.authority)
            new_answers = self._chain_answers(response, current, qtype)
            result.answers.extend(new_answers)
            terminal = [r for r in new_answers if r.rrtype == qtype]
            cnames = [r for r in new_answers if r.rrtype == RRType.CNAME]
            if terminal or not cnames:
                return result
            current = cnames[-1].rdata.target  # type: ignore[union-attr]
        raise ResolutionError(f"CNAME chain exceeds {MAX_CNAME_DEPTH}")

    # -- internals ----------------------------------------------------------------

    def _chain_answers(
        self, response: Message, qname: DomainName, qtype: RRType
    ) -> List[ResourceRecord]:
        """Order answer records along the CNAME chain starting at *qname*."""
        remaining = list(response.answers)
        ordered: List[ResourceRecord] = []
        current = qname
        progress = True
        while progress:
            progress = False
            matched = [r for r in remaining if r.name == current]
            for record in matched:
                remaining.remove(record)
                ordered.append(record)
                if record.rrtype == RRType.CNAME:
                    current = record.rdata.target  # type: ignore[union-attr]
                    progress = True
        ordered.extend(remaining)
        return ordered

    def _resolve_once(
        self, qname: DomainName, qtype: RRType, result: ResolutionResult
    ) -> Message:
        """Resolve one link of the chain by walking down from the roots."""
        if self._cache is not None:
            cached = self._cache.get(qname, qtype, self.clock)
            if cached is None and qtype != RRType.CNAME:
                cached = self._cache.get(qname, RRType.CNAME, self.clock)
            if cached is not None:
                synthetic = Message()
                synthetic.answers = cached
                return synthetic
            negative = self._cache.get_negative(qname, qtype, self.clock)
            if negative is not None:
                synthetic = Message()
                synthetic.flags = Flags(qr=True, rcode=negative)
                return synthetic

        servers: List[IPAddress] = list(self._roots)
        for _ in range(MAX_REFERRALS):
            response = self._ask_any(servers, qname, qtype, result)
            if response.flags.rcode not in (Rcode.NOERROR, Rcode.NXDOMAIN):
                return response
            if response.answers or response.flags.rcode == Rcode.NXDOMAIN:
                self._cache_response(response)
                if response.flags.rcode == Rcode.NXDOMAIN:
                    self._cache_negative(qname, qtype, response)
                return response
            if response.is_referral():
                servers = self._servers_from_referral(response, result)
                if not servers:
                    raise ResolutionError(
                        f"referral for {qname} has no reachable servers"
                    )
                continue
            # Authoritative NODATA.
            self._cache_negative(qname, qtype, response)
            return response
        raise ResolutionError(f"referral chain for {qname} too long")

    def _servers_from_referral(
        self, response: Message, result: ResolutionResult
    ) -> List[IPAddress]:
        ns_records = [
            r for r in response.authority if r.rrtype == RRType.NS
        ]
        glue: Dict[DomainName, List[IPAddress]] = {}
        for record in response.additional:
            if record.rrtype in (RRType.A, RRType.AAAA):
                glue.setdefault(record.name, []).append(
                    ipaddress.ip_address(record.rdata.to_text())
                )
        servers: List[IPAddress] = []
        unresolved: List[DomainName] = []
        for record in ns_records:
            nsdname = record.rdata.nsdname  # type: ignore[union-attr]
            if nsdname in glue:
                servers.extend(glue[nsdname])
            else:
                unresolved.append(nsdname)
        if not servers:
            # Out-of-bailiwick name servers: resolve their addresses.
            for nsdname in unresolved:
                try:
                    sub = self.resolve(nsdname, RRType.A)
                except ResolutionError:
                    continue
                servers.extend(
                    ipaddress.ip_address(a)
                    for a in sub.addresses()
                )
                result.queries_sent += sub.queries_sent
                if servers:
                    break
        return servers

    def _ask_any(
        self,
        servers: Sequence[IPAddress],
        qname: DomainName,
        qtype: RRType,
        result: ResolutionResult,
    ) -> Message:
        request = make_query(
            qname, qtype, msg_id=next(self._msg_ids) & 0xFFFF,
            recursion_desired=False,
            edns_payload_size=self._edns_payload_size,
        )
        payload = encode_message(request)
        last_error: Optional[Exception] = None
        for server in servers:
            for _ in range(RETRIES_PER_SERVER):
                result.queries_sent += 1
                try:
                    raw = self._network.query(server, payload)
                except TransportError as exc:
                    last_error = exc
                    continue
                try:
                    response = decode_message(raw)
                except WireDecodeError as exc:
                    # A garbled response is operationally a lost one:
                    # count the attempt and try again / move on.
                    last_error = exc
                    continue
                if response.msg_id != request.msg_id:
                    raise ResolutionError("response id mismatch")
                if response.flags.tc:
                    # Truncated over the datagram channel: retry the same
                    # server over the stream channel (TCP fallback).
                    result.queries_sent += 1
                    try:
                        raw = self._network.query_stream(server, payload)
                    except TransportError as exc:
                        last_error = exc
                        continue
                    try:
                        response = decode_message(raw)
                    except WireDecodeError as exc:
                        last_error = exc
                        continue
                    if response.msg_id != request.msg_id:
                        raise ResolutionError("response id mismatch")
                return response
        raise ResolutionError(
            f"no server answered for {qname}/{qtype.name}: {last_error}"
        )

    def _cache_negative(
        self, qname: DomainName, qtype: RRType, response: Message
    ) -> None:
        """RFC 2308: remember NXDOMAIN/NODATA for the SOA-derived TTL."""
        if self._cache is None:
            return
        ttl = DEFAULT_NEGATIVE_TTL
        for record in response.authority:
            if record.rrtype == RRType.SOA:
                ttl = min(
                    record.ttl,
                    record.rdata.minimum,  # type: ignore[union-attr]
                )
                break
        self._cache.put_negative(
            qname, qtype, response.flags.rcode, ttl, self.clock
        )

    def _cache_response(self, response: Message) -> None:
        if self._cache is None or not response.answers:
            return
        by_key: Dict[Tuple[DomainName, RRType], List[ResourceRecord]] = {}
        for record in response.answers:
            by_key.setdefault((record.name, record.rrtype), []).append(record)
        for (name, rrtype), records in by_key.items():
            self._cache.put(name, rrtype, records, self.clock)
