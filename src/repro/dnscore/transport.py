"""A simulated UDP-like datagram network for in-process DNS resolution.

Servers register under IP addresses; clients exchange *wire bytes* with
them, so the full encode → network → decode path is exercised exactly as it
would be on a real socket. The network can inject deterministic packet loss
and accounts for bytes and datagrams carried (used by the measurement
platform's statistics).
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]

#: A server endpoint: consumes request wire bytes, returns response bytes.
WireHandler = Callable[[bytes], bytes]


class TransportError(Exception):
    """Raised when a datagram cannot be delivered."""


class HostUnreachable(TransportError):
    """No server is listening on the destination address."""


class Timeout(TransportError):
    """The (simulated) datagram or its response was lost."""


@dataclass
class NetworkStats:
    """Counters for traffic carried by the simulated network."""

    datagrams_sent: int = 0
    datagrams_lost: int = 0
    streams_opened: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class SimulatedNetwork:
    """Routes datagrams to registered wire handlers by IP address.

    Two channels exist per address: the lossy datagram channel (UDP-like,
    size-limited at the server) and an optional stream channel (TCP-like:
    reliable, no size limit) used for truncation fallback.
    """

    def __init__(self, loss_rate: float = 0.0, seed: int = 0):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self._handlers: Dict[IPAddress, WireHandler] = {}
        self._stream_handlers: Dict[IPAddress, WireHandler] = {}
        self._loss_rate = loss_rate
        self._rng = random.Random(seed)
        self.stats = NetworkStats()

    def register(
        self,
        address: IPAddress,
        handler: WireHandler,
        stream_handler: Optional[WireHandler] = None,
    ) -> None:
        """Bind handlers to *address*, replacing any previous binding.

        When *stream_handler* is omitted the datagram handler also serves
        stream queries.
        """
        destination = ipaddress.ip_address(address)
        self._handlers[destination] = handler
        self._stream_handlers[destination] = stream_handler or handler

    def unregister(self, address: IPAddress) -> None:
        destination = ipaddress.ip_address(address)
        self._handlers.pop(destination, None)
        self._stream_handlers.pop(destination, None)

    def is_listening(self, address: IPAddress) -> bool:
        return ipaddress.ip_address(address) in self._handlers

    def query(self, address: IPAddress, payload: bytes) -> bytes:
        """One datagram exchange (may be lost, may come back truncated)."""
        destination = ipaddress.ip_address(address)
        handler = self._handlers.get(destination)
        self.stats.datagrams_sent += 1
        self.stats.bytes_sent += len(payload)
        if handler is None:
            raise HostUnreachable(f"no server at {destination}")
        if self._loss_rate and self._rng.random() < self._loss_rate:
            self.stats.datagrams_lost += 1
            raise Timeout(f"datagram to {destination} lost")
        response = handler(payload)
        self.stats.bytes_received += len(response)
        return response

    def query_stream(self, address: IPAddress, payload: bytes) -> bytes:
        """One stream exchange: reliable, unlimited response size."""
        destination = ipaddress.ip_address(address)
        handler = self._stream_handlers.get(destination)
        self.stats.streams_opened += 1
        self.stats.bytes_sent += len(payload)
        if handler is None:
            raise HostUnreachable(f"no server at {destination}")
        response = handler(payload)
        self.stats.bytes_received += len(response)
        return response
