#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

    python examples/adoption_study.py [scale]

Runs the full pipeline (world → daily measurement model → ASN enrichment →
detection → all analyses) and prints Table 1, Table 2, and Figures 2–8 plus
the §4.4.1 anomaly walk-through. Scale 1000 reproduces a 1:1000 world
(~150k domains, a few minutes); the default 8000 runs in well under a
minute.
"""

import sys
import time

from repro import AdoptionStudy, ScenarioConfig, build_paper_world
from repro.reporting import (
    render_attributions,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_figure8,
    render_table1,
    render_table2,
)
from repro.core.references import SignatureCatalog


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 8000
    print(f"# Reproduction run at scale 1:{scale}\n")

    started = time.time()
    world = build_paper_world(ScenarioConfig(scale=scale))
    study = AdoptionStudy(world)
    results = study.run()
    print(f"(world + study in {time.time() - started:.1f}s; "
          f"{len(world.domains):,} domains)\n")

    print(render_table1(results), end="\n\n")

    print("Deriving Table 2 via the §3.3 bootstrap ...")
    fingerprints = study.derive_table2(day=30)
    print(
        render_table2(
            fingerprints, reference=SignatureCatalog.paper_table2()
        ),
        end="\n\n",
    )

    for renderer in (
        render_figure2,
        render_figure3,
        render_figure4,
        render_figure5,
        render_figure6,
        render_figure7,
        render_figure8,
    ):
        print(renderer(results), end="\n\n")

    print(render_attributions(results, limit=25))


if __name__ == "__main__":
    main()
