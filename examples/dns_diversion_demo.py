#!/usr/bin/env python3
"""The paper's §2.1, live: the three DNS-based traffic-diversion methods.

Builds the examples from the paper — ``www.examp.le`` protected via an
address record, via a CNAME to a DPS-owned name (``foob.ar``), and via
name-server delegation — as real zones on the simulated network, then
resolves them with the iterative resolver and prints dig-style output
matching the listings in the paper.

    python examples/dns_diversion_demo.py
"""

import ipaddress

from repro.dnscore import (
    AuthoritativeServer,
    DomainName,
    IterativeResolver,
    RRType,
    SimulatedNetwork,
    Zone,
    decode_message,
    encode_message,
)
from repro.dnscore.records import SOAData


def soa() -> SOAData:
    return SOAData(
        DomainName.from_text("ns.invalid"),
        DomainName.from_text("hostmaster.invalid"),
        serial=1,
    )


def serve(net: SimulatedNetwork, server: AuthoritativeServer, ip: str) -> None:
    net.register(
        ipaddress.ip_address(ip),
        lambda raw: encode_message(server.handle_query(decode_message(raw))),
    )


def build_tree() -> tuple:
    net = SimulatedNetwork()

    root = Zone(DomainName.root(), soa())
    root.add(".", RRType.NS, "ns.root-servers.net.")
    for tld, ns_ip in (("le", "192.0.2.10"), ("ar", "192.0.2.30")):
        root.add(tld, RRType.NS, f"ns.nic.{tld}.")
        root.add(f"ns.nic.{tld}", RRType.A, ns_ip)
    rootsrv = AuthoritativeServer("root")
    rootsrv.attach_zone(root)
    serve(net, rootsrv, "192.0.2.1")

    le = Zone(DomainName.from_text("le"), soa())
    le.add("le", RRType.NS, "ns.nic.le.")
    # Three domains, one per diversion method.
    for domain, ns, glue in (
        ("a-record.examp.le", "ns.registr.ar.", None),
        ("cname.examp.le", "ns.registr.ar.", None),
        ("delegated.examp.le", "ns.foob.ar.", None),
    ):
        le.add(domain, RRType.NS, ns)
    lesrv = AuthoritativeServer("le")
    lesrv.attach_zone(le)
    serve(net, lesrv, "192.0.2.10")

    ar = Zone(DomainName.from_text("ar"), soa())
    ar.add("ar", RRType.NS, "ns.nic.ar.")
    ar.add("registr.ar", RRType.NS, "ns.registr.ar.")
    ar.add("ns.registr.ar", RRType.A, "192.0.2.20")
    ar.add("foob.ar", RRType.NS, "ns.foob.ar.")
    ar.add("ns.foob.ar", RRType.A, "192.0.2.40")
    arsrv = AuthoritativeServer("ar")
    arsrv.attach_zone(ar)
    serve(net, arsrv, "192.0.2.30")

    # The customer's registrar-operated name server. It also serves its
    # own registr.ar zone so that ns.registr.ar is resolvable.
    registrar = AuthoritativeServer("registrar")
    registrar_zone = Zone(DomainName.from_text("registr.ar"), soa())
    registrar_zone.add("registr.ar", RRType.NS, "ns.registr.ar.")
    registrar_zone.add("ns.registr.ar", RRType.A, "192.0.2.20")
    registrar.attach_zone(registrar_zone)
    # Method 1: address record — the owner points directly at a
    # DPS-assigned address (10.0.0.1).
    a_zone = Zone(DomainName.from_text("a-record.examp.le"), soa())
    a_zone.add("a-record.examp.le", RRType.NS, "ns.registr.ar.")
    a_zone.add("www.a-record.examp.le", RRType.A, "10.0.0.1")
    registrar.attach_zone(a_zone)
    # Method 2: canonical name — www is an alias for a DPS-owned name.
    c_zone = Zone(DomainName.from_text("cname.examp.le"), soa())
    c_zone.add("cname.examp.le", RRType.NS, "ns.registr.ar.")
    c_zone.add("www.cname.examp.le", RRType.CNAME, "customer-17.foob.ar.")
    registrar.attach_zone(c_zone)
    serve(net, registrar, "192.0.2.20")

    # The DPS runs foob.ar and, for method 3, the delegated customer zone.
    dps = AuthoritativeServer("dps")
    dps_zone = Zone(DomainName.from_text("foob.ar"), soa())
    dps_zone.add("foob.ar", RRType.NS, "ns.foob.ar.")
    dps_zone.add("ns.foob.ar", RRType.A, "192.0.2.40")
    dps_zone.add("customer-17.foob.ar", RRType.A, "10.0.0.2")
    dps.attach_zone(dps_zone)
    delegated = Zone(DomainName.from_text("delegated.examp.le"), soa())
    delegated.add("delegated.examp.le", RRType.NS, "ns.foob.ar.")
    delegated.add("www.delegated.examp.le", RRType.A, "10.0.0.2")
    dps.attach_zone(delegated)
    serve(net, dps, "192.0.2.40")

    return net, ["192.0.2.1"]


def main() -> None:
    net, roots = build_tree()
    resolver = IterativeResolver(net, roots)

    for title, qname in (
        ("Address record (owner sets a DPS-assigned IP)",
         "www.a-record.examp.le"),
        ("Canonical name (alias into the DPS zone foob.ar)",
         "www.cname.examp.le"),
        ("Name server (zone delegated to the DPS's ns.foob.ar)",
         "www.delegated.examp.le"),
    ):
        print("=" * 72)
        print(title)
        print("=" * 72)
        result = resolver.resolve(DomainName.from_text(qname), RRType.A)
        print(";; ANSWER SECTION:")
        for record in result.answers:
            print(record.to_text())
        print(";; AUTHORITY SECTION:")
        for record in result.authority:
            if record.rrtype == RRType.NS:
                print(record.to_text())
        print(f";; ({result.queries_sent} queries, full CNAME expansion: "
              f"{[str(c) for c in result.cname_chain] or 'none'})")
        print()


if __name__ == "__main__":
    main()
