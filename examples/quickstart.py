#!/usr/bin/env python3
"""Quickstart: build a calibrated world, run the study, print the headlines.

    python examples/quickstart.py [scale]

*scale* divides the paper's absolute counts (default 12000 → ~12k domains,
runs in seconds). Use 1000 for a full-size 140k-domain world.
"""

import sys
import time

from repro import AdoptionStudy, ScenarioConfig, build_paper_world
from repro.reporting import render_figure5


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 12000

    print(f"Building the paper world at scale 1:{scale} ...")
    started = time.time()
    world = build_paper_world(ScenarioConfig(scale=scale))
    print(
        f"  {len(world.domains):,} domains, "
        f"{len(world.providers)} DPS providers, "
        f"{len(world.thirdparties)} third parties "
        f"({time.time() - started:.1f}s)"
    )

    print("Running the adoption study (measure → enrich → detect → analyze)")
    started = time.time()
    results = AdoptionStudy(world).run()
    print(f"  done in {time.time() - started:.1f}s\n")

    adoption = results.provider_growth_factor()
    expansion = results.expansion_factor()
    print(f"DPS adoption growth over 1.5 years : {adoption:.2f}x "
          f"(paper: 1.24x)")
    print(f"Overall namespace expansion        : {expansion:.2f}x "
          f"(paper: 1.09x)")
    for label, series in results.growth_cc.items():
        print(f"{label:<35}: {series.growth_factor:.3f}x")
    print()
    print(render_figure5(results))


if __name__ == "__main__":
    main()
