#!/usr/bin/env python3
"""On-demand forensics: peaks, durations, and who is behind the anomalies.

    python examples/ondemand_forensics.py [provider] [scale]

For one provider this prints the §3.4 usage-class census, the Fig. 8
peak-duration CDF with its P80 marker, a sample on-demand domain's
diversion history, and the §4.4.1 anomaly attributions involving the
provider.
"""

import sys

from repro import AdoptionStudy, ScenarioConfig, build_paper_world
from repro.core.classification import UsageClassifier
from repro.reporting.figures import render_peak_cdf
from repro.world.timeline import month_label


def main() -> None:
    provider = sys.argv[1] if len(sys.argv) > 1 else "Neustar"
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 12000

    world = build_paper_world(ScenarioConfig(scale=scale))
    results = AdoptionStudy(world).run()

    print(f"== Usage classes for {provider} (§3.4) ==")
    summary = UsageClassifier.summarize(results.usages)
    for usage_class, count in sorted(
        summary.get(provider, {}).items(), key=lambda kv: -kv[1]
    ):
        print(f"  {usage_class.value:<12} {count}")

    stats = results.peaks[provider]
    print(f"\n== Peak durations (Fig. 8) ==")
    print(f"  on-demand domains (≥3 peaks): {stats.domain_count}")
    if stats.durations:
        print(f"  completed peaks: {len(stats.durations)}, "
              f"P80 = {stats.p80} days")
        print(render_peak_cdf(stats))

    on_demand = [
        (domain, intervals)
        for (domain, p), intervals in (
            results.detection_gtld.intervals.items()
        )
        if p == provider and len(intervals) >= 3
    ]
    if on_demand:
        domain, intervals = on_demand[0]
        print(f"\n== Sample on-demand domain: {domain} ==")
        for interval in intervals:
            print(
                f"  diverted {month_label(interval.start)} day "
                f"{interval.start:>3} → day {interval.end:<3} "
                f"({interval.days} days)"
            )

    related = [
        a for a in results.attributions if a.event.provider == provider
    ]
    print(f"\n== Anomalies involving {provider} (§4.4.1) ==")
    if not related:
        print("  none above the detection thresholds")
    for attribution in related[:10]:
        event = attribution.event
        top = attribution.groups[0] if attribution.groups else ("?", 0)
        print(
            f"  {month_label(event.day)} (day {event.day}): "
            f"{event.delta:+d} domains — traced to {top[0]} "
            f"({top[1]} domains)"
        )


if __name__ == "__main__":
    main()
