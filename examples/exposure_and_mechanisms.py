#!/usr/bin/env python3
"""The §5 conclusion and §3.4 mechanism inference, quantified.

    python examples/exposure_and_mechanisms.py [scale]

Prints, for each provider: how many protected domain-days leave the
authoritative name servers outside the provider's protection (the paper's
closing warning), and — for domains that switch protection on/off — *how*
the diversion was effected (A-record change, CNAME toggle, delegation
switch, or BGP re-origination), inferred purely from measurement data.
"""

import sys
from collections import Counter

from repro import AdoptionStudy, ScenarioConfig, build_paper_world
from repro.core import (
    DiversionClassifier,
    SignatureCatalog,
    analyze_exposure,
    render_exposure,
)
from repro.reporting.tables import render_table


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 8000
    world = build_paper_world(ScenarioConfig(scale=scale))
    results = AdoptionStudy(world).run()

    print(render_exposure(analyze_exposure(results.detection_gtld)))
    print()

    classifier = DiversionClassifier(SignatureCatalog.paper_table2())
    edges = classifier.classify_result(
        results.detection_gtld, results.segments, min_peaks=2
    )
    summary = DiversionClassifier.summarize(edges)
    rows = []
    for provider in sorted(summary):
        counts = Counter(
            {m.value: c for m, c in summary[provider].items()}
        )
        total = sum(counts.values())
        rows.append(
            [
                provider,
                str(total),
                *(
                    f"{counts.get(kind, 0)}"
                    for kind in ("a-record", "cname", "ns-delegation",
                                 "bgp", "unobserved")
                ),
            ]
        )
    print(
        render_table(
            ["Provider", "switches", "A-record", "CNAME", "NS", "BGP",
             "unobs."],
            rows,
            title=(
                "How on-demand diversion was effected (§3.4), inferred "
                "from measurements"
            ),
        )
    )


if __name__ == "__main__":
    main()
