#!/usr/bin/env python3
"""Watch the §3.3 fingerprint bootstrap work, provider by provider.

    python examples/fingerprint_discovery.py [provider] [scale]

Shows the seed ASNs from AS-to-name data, then the SLDs and extra ASNs the
bootstrap accepts (with their domain support counts), and compares the
outcome against the paper's Table 2 ground truth.
"""

import sys

from repro import ScenarioConfig, build_paper_world
from repro.core.fingerprint import FingerprintBootstrap
from repro.core.references import SignatureCatalog
from repro.measurement.scheduler import ClusterManager


def main() -> None:
    provider = sys.argv[1] if len(sys.argv) > 1 else "CloudFlare"
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 12000

    world = build_paper_world(ScenarioConfig(scale=scale))
    print(f"Measuring .com/.net/.org on day 30 (scale 1:{scale}) ...")
    manager = ClusterManager(world, enrich=True)
    observations = []
    for source in ("com", "net", "org"):
        observations.extend(manager.measure_day(source, 30))
    print(f"  {len(observations):,} enriched observations\n")

    bootstrap = FingerprintBootstrap(observations, world.as_registry)
    seeds = bootstrap.seed_asns(provider)
    print(f"Seed ASNs for {provider!r} from AS-to-name data: "
          f"{sorted(seeds)}")

    result = bootstrap.derive(provider)
    print(f"Converged after {result.iterations} iteration(s):")
    print(f"  ASNs       : {sorted(result.asns)}")
    print(f"  CNAME SLDs : {sorted(result.cname_slds) or '—'}")
    print(f"  NS SLDs    : {sorted(result.ns_slds) or '—'}")
    print("  Support (domains observed per accepted reference):")
    for key, count in sorted(result.support.items()):
        print(f"    {key:<30} {count}")

    truth = SignatureCatalog.paper_table2().get(provider)
    if truth is None:
        print(f"\n(no Table 2 ground truth for {provider!r})")
        return
    print("\nAgainst the paper's Table 2:")
    print(f"  ASNs  missing: {sorted(truth.asns - result.asns) or 'none'}"
          f" | spurious: {sorted(result.asns - truth.asns) or 'none'}")
    print(f"  CNAME missing: "
          f"{sorted(truth.cname_slds - result.cname_slds) or 'none'}"
          f" | spurious: "
          f"{sorted(result.cname_slds - truth.cname_slds) or 'none'}")
    print(f"  NS    missing: "
          f"{sorted(truth.ns_slds - result.ns_slds) or 'none'}"
          f" | spurious: "
          f"{sorted(result.ns_slds - truth.ns_slds) or 'none'}")


if __name__ == "__main__":
    main()
