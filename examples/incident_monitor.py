#!/usr/bin/env python3
"""Replay the Sedo incident detection (§4.4.1's measurement-side inference).

    python examples/incident_monitor.py [scale]

The paper distinguishes the 22 Nov 2015 Akamai trough from a protection
change because "the number of measured domains with a sedoparking.com NS
SLD also dipped that same day" — a measurement-coverage signal, not a
DNS-content one. This example replays the days around the incident
through the platform's quality accounting and prints what an operator
would have seen.
"""

import sys

from repro import ScenarioConfig, build_paper_world
from repro.measurement.prober import FastProber
from repro.measurement.quality import (
    IncidentDetector,
    coverage_of,
)
from repro.world.timeline import month_label


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 12000
    world = build_paper_world(ScenarioConfig(scale=scale))
    prober = FastProber(world)
    names = list(world.zone_names("com", 260))
    detector = IncidentDetector(drop_fraction=0.5, min_population=3)

    print(f"Monitoring .com measurement quality, days 263–269 "
          f"(scale 1:{scale}, {len(names):,} names)\n")
    print(f"{'day':>4}  {'date':>8}  {'measured':>9}  {'dark':>5}  "
          f"{'coverage':>8}  incidents")
    for day in range(263, 270):
        rows = prober.observe_day(names, day)
        report = coverage_of("com", day, len(names), rows)
        incidents = detector.observe_day(day, rows)
        flags = ", ".join(
            f"{sld}: {before}→{after}" for sld, before, after in incidents
        )
        print(
            f"{day:>4}  {month_label(day):>8}  {report.measured:>9}  "
            f"{report.dark:>5}  {report.coverage:>7.1%}  {flags or '—'}"
        )

    print("\nsedoparking.com census across the window:")
    for day, count in detector.census_series("sedoparking.com"):
        print(f"  day {day}: {count} measured domains")
    print(
        "\nConclusion (as §4.4.1 infers): the dip is an infrastructure "
        "incident at the third party, not a protection change — the "
        "domains were unmeasurable, not re-pointed."
    )


if __name__ == "__main__":
    main()
