"""ClusterBackend scheduling — stealing vs none on a skewed workload.

The cluster backend's clock is logical (ticks priced by shard cost),
so the interesting numbers are deterministic scheduler outcomes, not
wall time: the makespan with work stealing on vs off for a workload
whose expensive shards all land on one node, and the speculation
count when a scripted leave kills a node mid-run. Wall time of the
simulated run is benchmarked for trend tracking; the assertions ride
on the tick arithmetic and hold on any machine.
"""

from __future__ import annotations

from repro.parallel.cluster import ClusterBackend, ClusterSchedule

_NODES = 4
_SHARDS = 32
#: Heavy-to-light cost ratio; round-robin placement parks every heavy
#: shard (index % _NODES == 0) on node 0, the worst case stealing
#: exists to fix.
_HEAVY, _LIGHT = 60, 2

_STEAL_FLOOR = 1.5


def _skewed_shards():
    return [
        list(range(_HEAVY if index % _NODES == 0 else _LIGHT))
        for index in range(_SHARDS)
    ]


def _fold(shard_index, payload):
    return (shard_index, sum(payload))


def _run(work_stealing, schedule=None):
    cluster = ClusterBackend(
        nodes=_NODES,
        shard_count=_SHARDS,
        work_stealing=work_stealing,
        schedule=schedule,
    )
    results = cluster.map_shards(_fold, _skewed_shards())
    return cluster, results


def test_cluster_stealing_beats_no_stealing(benchmark):
    lazy, lazy_results = _run(work_stealing=False)
    eager, eager_results = benchmark.pedantic(
        lambda: _run(work_stealing=True), rounds=3, iterations=1
    )
    assert eager_results == lazy_results

    churned, churned_results = _run(
        work_stealing=True,
        schedule=ClusterSchedule.scripted((5, "leave", 0), (9, "join", 7)),
    )
    assert churned_results == lazy_results

    ratio = lazy.makespan_ticks / eager.makespan_ticks
    benchmark.extra_info["nodes"] = _NODES
    benchmark.extra_info["shards"] = _SHARDS
    benchmark.extra_info["makespan_no_stealing"] = lazy.makespan_ticks
    benchmark.extra_info["makespan_stealing"] = eager.makespan_ticks
    benchmark.extra_info["steal_ratio"] = round(ratio, 3)
    benchmark.extra_info["shards_stolen"] = eager.shards_stolen
    benchmark.extra_info["shards_speculated_under_churn"] = (
        churned.shards_speculated
    )
    benchmark.extra_info["makespan_under_churn"] = churned.makespan_ticks
    assert ratio >= _STEAL_FLOOR, (
        f"stealing gained only {ratio:.2f}x on the skewed workload "
        f"(no-stealing {lazy.makespan_ticks} ticks vs "
        f"{eager.makespan_ticks})"
    )
    assert churned.shards_speculated > 0
