"""Ablation — growth-factor sensitivity to the smoothing/cleaning windows.

§4.2 smooths "over a time window of several weeks". This ablation sweeps
the window and shows the reported 1.24×-style factor is stable across
reasonable choices — i.e. the headline number is not a smoothing artifact.
"""

import pytest

from repro.core.growth import GrowthAnalysis

WINDOWS = (7, 15, 21, 31, 45)


@pytest.fixture(scope="module")
def adoption_series(bench_results):
    return bench_results.detection_gtld.any_use_combined


def test_growth_factor_stability_across_windows(benchmark, adoption_series):
    def sweep():
        return {
            window: GrowthAnalysis(window=window)
            .analyze("adoption", adoption_series)
            .growth_factor
            for window in WINDOWS
        }

    factors = benchmark.pedantic(sweep, rounds=3, iterations=1)
    values = list(factors.values())
    spread = max(values) - min(values)
    assert spread < 0.08, f"growth factor unstable across windows: {factors}"
    print()
    print("growth factor by smoothing window:",
          {w: round(f, 4) for w, f in factors.items()})


def test_cleaning_is_necessary(benchmark, adoption_series):
    """Without anomaly cleaning the factor is hostage to edge anomalies."""
    analysis = GrowthAnalysis()

    def with_and_without():
        cleaned = analysis.analyze("adoption", adoption_series)
        raw_factor = adoption_series[-1] / max(adoption_series[0], 1)
        return cleaned.growth_factor, raw_factor

    cleaned_factor, raw_factor = benchmark(with_and_without)
    print()
    print(f"cleaned {cleaned_factor:.3f}x vs raw endpoint {raw_factor:.3f}x")
