"""repro.sketch — the constant-memory aggregate plane, measured.

Two gates over the same 10× landed history as ``bench_scale.py``
(one gTLD source, a 60-day window, ``REPRO_BENCH_SCALE10`` world —
default 4000 → ~34k domains, ~1.7M observation rows):

* aggregate answer latency — a full provider-level question battery
  (per-provider adoption + distinct counts, top-K by adoption and by
  churn, distinct-domain cardinality) answered from the maintained
  sketch plane must run ≥10× faster than the exact whole-history pass
  (:meth:`AdoptionStudy.detect_from_store`). The plane answers from
  state the engine already holds; the exact path re-reads history.
* constant read memory — fresh child processes load a serialized plane
  built from the 60-day history and one built from a 12-day prefix and
  answer the same aggregate. Sketch widths are fixed up front, so the
  long-history plane's resident set must stay within 1.25× of the
  short one (an exact index grows with every domain-day it has seen).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

from repro.core.pipeline import AdoptionStudy
from repro.measurement.storage import ColumnStore
from repro.sketch.build import sketch_from_store
from repro.stream.feed import SegmentReplayFeed
from repro.world.scenario import ScenarioConfig, build_paper_world

import pytest

SCALE10 = int(os.environ.get("REPRO_BENCH_SCALE10", "4000"))
SCALE10_SEED = 2016
SOURCE = "com"
SCOPE = "gtld"
DAYS = 60
#: Short-history prefix for the constant-memory comparison.
SHORT_DAYS = 12


@pytest.fixture(scope="module")
def sketch_bench(tmp_path_factory):
    """(study, landed store, plane, long/short plane JSON paths)."""
    world = build_paper_world(
        ScenarioConfig(scale=SCALE10, seed=SCALE10_SEED)
    )
    study = AdoptionStudy(world)
    segments = study.collect_segments()

    landed = ColumnStore()
    feed = SegmentReplayFeed(world, segments, sources=(SOURCE,))
    for part in feed.days(end=DAYS):
        landed.append(part.source, part.day, list(part.observations))

    plane = sketch_from_store(landed)
    short = ColumnStore()
    for source, day in landed.partitions():
        if day < SHORT_DAYS:
            short.append(
                source, day, list(landed.rows(source, day))
            )
    short_plane = sketch_from_store(short)

    root = tmp_path_factory.mktemp("sketch10")
    long_path = str(root / "plane-long.json")
    short_path = str(root / "plane-short.json")
    with open(long_path, "w", encoding="utf-8") as handle:
        json.dump(plane.to_dict(), handle)
    with open(short_path, "w", encoding="utf-8") as handle:
        json.dump(short_plane.to_dict(), handle)
    return study, landed, plane, long_path, short_path


def _aggregate_battery(plane):
    """Every provider-level question the serve plane answers."""
    scope = plane.scope(SCOPE)
    answers = {
        "top_providers": scope.top_providers(10),
        "top_churn": scope.top_churn(10),
        "top_third_parties": scope.top_third_parties(10),
        "distinct_domains": scope.distinct_domains(),
    }
    for provider in scope.provider_names():
        day = max(scope.active_days(provider), default=0)
        answers[provider] = (
            scope.adoption_estimate(provider, day),
            scope.provider_distinct(provider),
        )
    return answers


def test_sketch_aggregates_vs_exact_pass_at_10x(benchmark, sketch_bench):
    study, landed, plane, _, _ = sketch_bench
    total_rows = sum(
        landed.row_count(source, day)
        for source, day in landed.partitions()
    )

    started = time.perf_counter()
    exact = study.detect_from_store(landed, (SOURCE,))
    exact_seconds = time.perf_counter() - started

    answers = benchmark.pedantic(
        lambda: _aggregate_battery(plane), rounds=5, iterations=1
    )

    # Integrity first: the plane saw every row the exact pass read.
    scope = plane.scope(SCOPE)
    assert scope.rows_observed == total_rows
    assert answers["top_providers"], "plane has no provider ranking"
    assert exact is not None

    sketch_seconds = benchmark.stats.stats.mean
    speedup = exact_seconds / sketch_seconds
    benchmark.extra_info["rows"] = total_rows
    benchmark.extra_info["exact_seconds"] = round(exact_seconds, 4)
    benchmark.extra_info["sketch_seconds"] = round(sketch_seconds, 6)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    assert speedup >= 10.0, (
        f"sketch aggregates only {speedup:.1f}x over the exact pass"
    )


_RSS_PROBE = """
import json
import os
import sys

from repro.sketch.plane import SketchPlane

with open(sys.argv[1], encoding="utf-8") as handle:
    plane = SketchPlane.from_dict(json.load(handle))
scope = plane.scope(sys.argv[2])
ranking = scope.top_providers(10)
estimate = scope.distinct_domains()
# Current VmRSS, not ru_maxrss: a vfork'd child's peak high-water
# mark records the parent's footprint during the fork window.
with open("/proc/self/statm") as handle:
    rss_pages = int(handle.read().split()[1])
print(len(ranking), rss_pages * os.sysconf("SC_PAGE_SIZE") // 1024)
"""


def _probe_rss(plane_path):
    """Resident set (KiB) of a fresh process answering an aggregate."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    output = subprocess.run(
        [sys.executable, "-c", _RSS_PROBE, plane_path, SCOPE],
        check=True,
        capture_output=True,
        text=True,
        env=env,
    ).stdout.split()
    return int(output[0]), int(output[1])


def test_aggregate_rss_constant_in_history(benchmark, sketch_bench):
    """5× more history must not grow the plane's resident set."""
    if not os.path.exists("/proc/self/statm"):
        pytest.skip("requires /proc for resident-set measurement")
    _, _, _, long_path, short_path = sketch_bench

    short_rank, short_rss = _probe_rss(short_path)
    long_rank, long_rss = benchmark.pedantic(
        lambda: _probe_rss(long_path), rounds=2, iterations=1
    )
    assert short_rank > 0 and long_rank > 0

    ratio = long_rss / short_rss
    benchmark.extra_info["short_rss_kib"] = short_rss
    benchmark.extra_info["long_rss_kib"] = long_rss
    benchmark.extra_info["ratio"] = round(ratio, 3)
    assert ratio <= 1.25, (
        f"aggregate read RSS grew {ratio:.2f}x with 5x longer history"
    )
