"""Analysis engine — incremental cache payoff, warm vs cold.

The claim the cache has to earn: a warm ``repro analyze`` over the
whole src tree is at least 5x faster than a cold one (docs/ANALYSIS.md
§caching). Cold builds every per-module summary and runs the
interprocedural fixpoint; warm short-circuits through the project
fingerprint and replays the assembled result. Both the ratio and the
absolute times land in ``extra_info`` of the benchmark JSON, and the
two runs must agree finding-for-finding — a cache that changes the
report is worse than no cache.
"""

import time
from pathlib import Path

from repro.analysis.cache import AnalysisCache
from repro.analysis.project import ProjectAnalyzer

REPO = Path(__file__).parents[1]
SRC = REPO / "src"


def test_warm_analysis_is_5x_faster_than_cold(benchmark, tmp_path):
    cache = AnalysisCache(str(tmp_path / "cache"))
    analyzer = ProjectAnalyzer(cache=cache, root=str(REPO))

    start = time.perf_counter()
    cold = analyzer.analyze_paths([str(SRC)])
    cold_seconds = time.perf_counter() - start
    assert cold.files_checked > 50
    assert cold.cache_stats["module_misses"] == cold.files_checked

    warm = benchmark(lambda: analyzer.analyze_paths([str(SRC)]))
    warm_seconds = benchmark.stats.stats.mean

    # The cache must be invisible in the report itself.
    assert warm.cache_stats["project_hit"]
    assert warm.findings == cold.findings
    assert warm.rules_run == cold.rules_run
    assert warm.files_checked == cold.files_checked

    speedup = cold_seconds / warm_seconds
    benchmark.extra_info["files_checked"] = cold.files_checked
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 3)
    benchmark.extra_info["warm_speedup"] = round(speedup, 1)
    print(
        f"\ncold {cold_seconds:.2f}s over {cold.files_checked} files, "
        f"warm {warm_seconds * 1e3:.1f}ms ({speedup:.0f}x)"
    )
    assert speedup >= 5, f"warm run only {speedup:.1f}x faster than cold"


def test_invalidation_rebuilds_only_reachable_modules(
    benchmark, tmp_path
):
    """One edited module costs one rebuild plus the (cheap) fixpoint,
    not a cold start: the per-module layer absorbs everything else."""
    cache = AnalysisCache(str(tmp_path / "cache"))
    analyzer = ProjectAnalyzer(cache=cache, root=str(REPO))
    analyzer.analyze_paths([str(SRC)])

    target = SRC / "repro" / "analysis" / "findings.py"
    original = target.read_text()
    edits = iter(range(1_000_000))

    def edit_and_reanalyze():
        target.write_text(
            original + f"\n# cache-buster {next(edits)}\n"
        )
        try:
            return analyzer.analyze_paths([str(SRC)])
        finally:
            target.write_text(original)

    result = benchmark.pedantic(edit_and_reanalyze, rounds=3)
    assert result.cache_stats["module_misses"] == 1
    assert result.cache_stats["module_hits"] == result.files_checked - 1
    benchmark.extra_info["module_misses"] = (
        result.cache_stats["module_misses"]
    )
