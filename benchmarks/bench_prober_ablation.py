"""Ablation — fast state-reading prober vs full wire-format prober.

Quantifies what the fast path buys: both produce identical observation
rows (asserted), but the wire path pays for real iterative resolution —
message encoding, referrals from the root, CNAME chasing.
"""

import random

import pytest

from repro.measurement.prober import FastProber, WireProber

SAMPLE = 64
DAY = 100


@pytest.fixture(scope="module")
def sample_names(bench_world):
    rng = random.Random(99)
    alive = [
        name
        for name, timeline in bench_world.domains.items()
        if timeline.alive(DAY) and timeline.tld == "com"
    ]
    return rng.sample(alive, min(SAMPLE, len(alive)))


def test_fast_prober(benchmark, bench_world, sample_names):
    prober = FastProber(bench_world)
    rows = benchmark(prober.observe_day, sample_names, DAY)
    assert len(rows) == len(sample_names)


def test_wire_prober(benchmark, bench_world, sample_names):
    prober = WireProber(bench_world)
    rows = benchmark.pedantic(
        prober.observe_day, args=(sample_names, DAY), rounds=2, iterations=1
    )
    fast_rows = FastProber(bench_world).observe_day(sample_names, DAY)
    assert rows == fast_rows  # same contract, different cost
