"""repro.batch — columnar vs per-row data plane, measured.

Three measurements over the same landed :class:`ColumnStore` history
(one gTLD source, a 60-day window):

* the detect phase — boxing every row into ``DomainObservation`` +
  per-domain ``process_domain`` against columnar
  ``SegmentDetector.process_batch`` over one concatenated batch. The
  ≥2× bar is asserted unconditionally: both sides are serial, so core
  count cannot excuse a miss;
* stream ingest — ``StoreReplayFeed(batches=False)`` (legacy per-row
  boxing) vs the columnar default, asserting the engines end in
  byte-identical state and recording the speedup;
* peak working-set RSS — forked children materialise the boxed row
  history vs the columnar batch and report their ``ru_maxrss`` growth;
  the reduction lands in ``extra_info``.

The workload world is sized independently of the shared bench fixtures
(``REPRO_BENCH_BATCH_SCALE``, default 40000 → ~3k domains): the row
path is the slow side being measured, and a larger world would spend
CI minutes proving the same ratio.
"""

from __future__ import annotations

import multiprocessing
import os
import resource
import time

from repro.batch.batch import BatchBuilder, ObservationBatch
from repro.core.detection import SegmentDetector
from repro.core.pipeline import AdoptionStudy
from repro.measurement.snapshot import ObservationSegment
from repro.measurement.storage import ColumnStore
from repro.stream.checkpoint import state_digest
from repro.stream.engine import StreamEngine
from repro.stream.feed import SegmentReplayFeed, StoreReplayFeed
from repro.world.scenario import ScenarioConfig, build_paper_world

import pytest

BATCH_BENCH_SCALE = int(
    os.environ.get("REPRO_BENCH_BATCH_SCALE", "40000")
)
BATCH_BENCH_SEED = 2016
SOURCE = "com"
DAYS = 60


@pytest.fixture(scope="module")
def batch_bench():
    """(study, landed store) for the columnar-plane workload."""
    world = build_paper_world(
        ScenarioConfig(scale=BATCH_BENCH_SCALE, seed=BATCH_BENCH_SEED)
    )
    study = AdoptionStudy(world)
    segments = study.collect_segments()
    store = ColumnStore()
    feed = SegmentReplayFeed(world, segments, sources=(SOURCE,))
    for part in feed.days(end=DAYS):
        store.append(part.source, part.day, list(part.observations))
    return study, store


def _detect_rows(study, store):
    """The pre-columnar detect phase: box every row, group by domain,
    run the per-domain segment detector."""
    detector = SegmentDetector(study.catalog, study.world.horizon)
    by_domain = {}
    for source, day in store.partitions():
        for row in store.rows(source, day):
            by_domain.setdefault(row.domain, []).append(row)
    for domain, rows in by_domain.items():
        detector.process_domain(
            domain,
            rows[0].tld,
            [ObservationSegment(r.day, r.day + 1, r) for r in rows],
        )
    return detector.result()


def _detect_batch(study, store):
    """The columnar detect phase: concat the landed partitions into one
    batch (shared pools) and run ``process_batch``."""
    builder = BatchBuilder()
    parts = [
        store.batch(source, day, builder=builder)
        for source, day in store.partitions()
    ]
    detector = SegmentDetector(study.catalog, study.world.horizon)
    detector.process_batch(ObservationBatch.concat(parts))
    return detector.result()


def test_batch_detect_speedup(benchmark, batch_bench):
    study, store = batch_bench
    total_rows = sum(
        store.row_count(source, day)
        for source, day in store.partitions()
    )

    started = time.perf_counter()
    row_result = _detect_rows(study, store)
    row_seconds = time.perf_counter() - started

    batch_result = benchmark.pedantic(
        lambda: _detect_batch(study, store), rounds=3, iterations=1
    )

    # Identity first: the speedup is worthless if the results differ.
    assert batch_result == row_result

    batch_seconds = benchmark.stats.stats.mean
    speedup = row_seconds / batch_seconds
    benchmark.extra_info["rows"] = total_rows
    benchmark.extra_info["row_seconds"] = round(row_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    # Serial vs serial: no core-count gate applies.
    assert speedup >= 2.0, (
        f"columnar detect only {speedup:.2f}x over the row path"
    )


def _ingest(store, batches):
    engine = StreamEngine(
        store_horizon(store), sources=(SOURCE,),
        windows={SOURCE: (0, DAYS)},
    )
    engine.ingest_feed(StoreReplayFeed(store, batches=batches).days())
    return engine


def store_horizon(store):
    return max(day for _, day in store.partitions()) + 1


def test_stream_ingest_row_vs_batch(benchmark, batch_bench):
    _, store = batch_bench

    started = time.perf_counter()
    row_engine = _ingest(store, batches=False)
    row_seconds = time.perf_counter() - started

    batch_engine = benchmark.pedantic(
        lambda: _ingest(store, batches=True), rounds=3, iterations=1
    )

    assert state_digest(batch_engine) == state_digest(row_engine)

    batch_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["row_seconds"] = round(row_seconds, 4)
    benchmark.extra_info["speedup"] = round(
        row_seconds / batch_seconds, 3
    )


def _child_rss_delta(build, store, queue):
    """Measure how far *build*'s working set pushes this process's peak
    RSS past the inherited baseline (KiB on Linux)."""
    base = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    working_set = build(store)
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    queue.put((peak - base, len(working_set)))


def _boxed_history(store):
    return [
        row
        for source, day in store.partitions()
        for row in store.rows(source, day)
    ]


def _columnar_history(store):
    builder = BatchBuilder()
    return ObservationBatch.concat(
        [
            store.batch(source, day, builder=builder)
            for source, day in store.partitions()
        ]
    )


def test_peak_rss_reduction(benchmark, batch_bench):
    """Forked children materialise the whole history each way; the
    parent reports the peak-RSS growth of each working set."""
    _, store = batch_bench
    context = multiprocessing.get_context("fork")

    def measure(build):
        queue = context.Queue()
        child = context.Process(
            target=_child_rss_delta, args=(build, store, queue)
        )
        child.start()
        delta_kib, rows = queue.get()
        child.join()
        assert child.exitcode == 0
        return delta_kib, rows

    boxed_kib, boxed_rows = measure(_boxed_history)
    batch_kib, batch_rows = benchmark.pedantic(
        lambda: measure(_columnar_history), rounds=1, iterations=1
    )
    assert batch_rows == boxed_rows

    benchmark.extra_info["rows"] = boxed_rows
    benchmark.extra_info["boxed_rss_kib"] = boxed_kib
    benchmark.extra_info["batch_rss_kib"] = batch_kib
    if batch_kib > 0:
        benchmark.extra_info["rss_reduction"] = round(
            boxed_kib / batch_kib, 2
        )
