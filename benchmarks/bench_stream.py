"""Streaming ingest — one day's increment vs recomputing the history.

The point of the incremental engine: when day N lands, updating the
aggregates costs O(day N's observations), while the batch pipeline pays
O(full history) to produce the same numbers. The benchmark times the
single-day increment against a from-scratch gTLD detection over the same
world and records the ratio in ``extra_info`` of the benchmark JSON.
"""

import time

from repro.core.detection import SegmentDetector
from repro.core.references import SignatureCatalog
from repro.stream.engine import GTLD_SOURCES, StreamEngine
from repro.stream.feed import SegmentReplayFeed

GTLDS = set(GTLD_SOURCES)


def _full_gtld_recompute(world, segments, catalog, horizon):
    detector = SegmentDetector(catalog, horizon)
    for name, domain_segments in segments.items():
        timeline = world.domains.get(name)
        if timeline is None or timeline.tld not in GTLDS:
            continue
        detector.process_domain(name, timeline.tld, domain_segments)
    return detector.result()


def test_single_day_increment_vs_full_recompute(
    benchmark, bench_world, bench_segments
):
    horizon = bench_world.horizon
    last_day = horizon - 1
    catalog = SignatureCatalog.paper_table2()

    feed = SegmentReplayFeed(bench_world, bench_segments)
    warm = StreamEngine(
        horizon, catalog=catalog, windows=feed.windows()
    )
    warm.ingest_feed(feed.days(end=last_day))
    payload = warm.to_dict()
    final_partitions = [
        feed.partition(source, last_day) for source in feed.sources
    ]

    def setup():
        # A fresh clone per round: ingesting the same day twice would be
        # rejected as a duplicate.
        return (StreamEngine.from_dict(payload, catalog=catalog),), {}

    def increment(engine):
        for partition in final_partitions:
            engine.ingest(partition)
        return engine.any_adoption(day=last_day)

    streamed_final = benchmark.pedantic(
        increment, setup=setup, rounds=5, iterations=1
    )

    start = time.perf_counter()
    batch = _full_gtld_recompute(
        bench_world, bench_segments, catalog, horizon
    )
    full_seconds = time.perf_counter() - start

    # Same numbers, amortised cost.
    assert streamed_final == batch.any_use_combined[last_day]

    increment_seconds = benchmark.stats.stats.mean
    speedup = full_seconds / increment_seconds
    benchmark.extra_info["full_recompute_seconds"] = round(full_seconds, 6)
    benchmark.extra_info["single_day_seconds"] = round(
        increment_seconds, 6
    )
    benchmark.extra_info["speedup"] = round(speedup, 1)
    print(
        f"\nsingle-day increment {increment_seconds * 1e3:.2f} ms vs "
        f"full recompute {full_seconds * 1e3:.1f} ms — {speedup:.0f}x"
    )
    assert speedup > 5
