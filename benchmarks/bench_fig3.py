"""Figure 3 — per-provider use and AS/CNAME/NS method breakdown.

Checks the §4.3 method-mix findings (CloudFlare mostly delegated,
Incapsula almost never) and prints the per-provider series.
"""

from repro.core.references import RefType
from repro.reporting.figures import render_figure3


def test_fig3_provider_method_breakdown(benchmark, bench_results):
    detection = bench_results.detection_gtld

    def summarize():
        shares = {}
        for name, series in detection.providers.items():
            total = sum(series.total) or 1
            ns_series = series.by_ref.get(RefType.NS)
            shares[name] = (sum(ns_series) if ns_series else 0) / total
        return shares

    shares = benchmark(summarize)
    assert shares["CloudFlare"] > 0.6  # ~75% delegated (§4.3)
    assert shares["Incapsula"] < 0.05  # ~0.02% delegated (§4.3)
    ends = {
        name: series.total[-1]
        for name, series in detection.providers.items()
    }
    assert max(ends, key=ends.get) == "CloudFlare"
    print()
    print(render_figure3(bench_results))
