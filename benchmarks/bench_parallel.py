"""repro.parallel — sharded-study speedup and LPM-cache ablation.

Two measurements:

* the sharded measurement phase (``run_sharded_measurement``) against
  the serial equivalent, asserting byte-identical output and recording
  the speedup in ``extra_info`` (the ≥2× bar is only asserted on
  machines with ≥4 cores — a single-core runner cannot speed anything
  up, it can only prove identity);
* ``PrefixTrie.longest_match`` with the LRU cache on vs off, over an
  enrichment-shaped address workload (few distinct addresses, looked up
  day after day), recording the cache speedup in ``extra_info``.
"""

from __future__ import annotations

import ipaddress
import os
import time

from repro.core.detection import DetectionResult
from repro.parallel.study import run_sharded_measurement
from repro.routing.prefixtrie import PrefixTrie

_MIN_CORES_FOR_SPEEDUP = 4
_PARALLEL_WORKERS = 4


def _measure_serial(study):
    segments = study.collect_segments()
    gtld_names = [
        name
        for name, timeline in study.world.domains.items()
        if timeline.tld in ("com", "net", "org")
    ]
    return segments, study.detect(segments, gtld_names)


def test_parallel_study_speedup(benchmark, bench_study):
    started = time.perf_counter()
    serial_segments, serial_detection = _measure_serial(bench_study)
    serial_seconds = time.perf_counter() - started

    measured = benchmark.pedantic(
        lambda: run_sharded_measurement(
            bench_study, workers=_PARALLEL_WORKERS
        ),
        rounds=1,
        iterations=1,
    )

    # Identity first: the speedup is worthless if the bytes differ.
    assert measured.segments == serial_segments
    assert list(measured.segments) == list(serial_segments)
    merged = DetectionResult.merge([serial_detection])
    gtld = measured.detection_gtld
    assert gtld.any_use_combined == merged.any_use_combined
    assert gtld.intervals == merged.intervals
    assert gtld.domains_seen == merged.domains_seen

    parallel_seconds = benchmark.stats.stats.mean
    speedup = serial_seconds / parallel_seconds
    benchmark.extra_info["workers"] = _PARALLEL_WORKERS
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    if (os.cpu_count() or 1) >= _MIN_CORES_FOR_SPEEDUP:
        assert speedup >= 2.0, (
            f"expected >=2x on {os.cpu_count()} cores, got {speedup:.2f}x"
        )


def _enrichment_workload(world, repeats: int = 10):
    """The addresses an enrichment sweep resolves, pre-parsed, repeated.

    Enrichment's locality comes from a bounded set of hot addresses
    (provider and name-server hosts) queried day after day, so the
    distinct working set is kept below the default cache bound — a
    working set larger than the cache would just thrash the LRU.
    """
    addresses = []
    for hoster in world.hosters:
        for name in list(world.domains)[:100]:
            addresses.append(
                ipaddress.ip_address(hoster.host_address(name))
            )
    return addresses * repeats


def test_lpm_cache_ablation(benchmark, bench_world):
    pfx2as = bench_world.pfx2as_at(0)
    entries = list(pfx2as)
    probes = _enrichment_workload(bench_world)

    def build(cache_size):
        trie = PrefixTrie(lpm_cache_size=cache_size)
        for entry in entries:
            trie.insert(entry.prefix, entry.origins)
        return trie

    def sweep(trie):
        return sum(
            1 for probe in probes if trie.longest_match(probe) is not None
        )

    uncached_trie = build(0)
    started = time.perf_counter()
    uncached_hits = sweep(uncached_trie)
    uncached_seconds = time.perf_counter() - started

    cached_trie = build(4096)
    cached_hits = benchmark.pedantic(
        lambda: sweep(cached_trie), rounds=3, iterations=1
    )

    assert cached_hits == uncached_hits
    assert cached_trie.lpm_cache_hits > 0
    cached_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["probes"] = len(probes)
    benchmark.extra_info["uncached_seconds"] = round(uncached_seconds, 4)
    benchmark.extra_info["lpm_cache_speedup"] = round(
        uncached_seconds / cached_seconds, 3
    )
    # The cache must actually pay for itself on this workload.
    assert cached_seconds < uncached_seconds
