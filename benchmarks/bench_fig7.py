"""Figure 7 — flux of DPS use per provider (two-week first/last deltas).

Paper take-aways checked here: repeated anomalies trace to the *same*
domain sets (so influx stays bounded), and CloudFlare's influx is spread
out where mass-event providers are concentrated.
"""

from repro.core.flux import FluxAnalysis
from repro.reporting.figures import render_figure7


def test_fig7_flux(benchmark, bench_results):
    analysis = FluxAnalysis(bench_results.horizon)
    series = benchmark(analysis.analyze, bench_results.detection_gtld)

    incapsula = series["Incapsula"]
    wix_scale_pairs = sum(
        1
        for (domain, provider) in bench_results.detection_gtld.intervals
        if provider == "Incapsula"
    )
    # Each domain contributes at most once to influx even across many
    # repeated Wix swings.
    assert sum(incapsula.influx) <= wix_scale_pairs
    # CloudFlare's arrivals are spread out; Incapsula's are event-driven.
    assert series["CloudFlare"].spread() > series["Incapsula"].spread()
    print()
    print(render_figure7(bench_results))
