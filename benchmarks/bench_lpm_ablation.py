"""Ablation — radix-trie longest-prefix match vs linear scan.

The enrichment stage performs one LPM per observed address; this ablation
shows why the trie (O(32) per lookup) matters against scanning the whole
prefix table.
"""

import ipaddress
import random

import pytest

from repro.routing.prefixtrie import PrefixTrie

TABLE_SIZE = 2000
PROBES = 500


@pytest.fixture(scope="module")
def table():
    rng = random.Random(4)
    prefixes = []
    seen = set()
    while len(prefixes) < TABLE_SIZE:
        prefixlen = rng.randint(10, 24)
        base = rng.getrandbits(prefixlen) << (32 - prefixlen)
        network = ipaddress.IPv4Network((base, prefixlen))
        if network not in seen:
            seen.add(network)
            prefixes.append((network, rng.randint(1, 65000)))
    probes = [
        ipaddress.IPv4Address(rng.getrandbits(32)) for _ in range(PROBES)
    ]
    return prefixes, probes


def test_lpm_with_prefix_trie(benchmark, table):
    prefixes, probes = table
    trie = PrefixTrie()
    for network, asn in prefixes:
        trie.insert(network, asn)

    def run():
        return [trie.longest_match(address) for address in probes]

    results = benchmark(run)
    assert len(results) == PROBES


def test_lpm_with_linear_scan(benchmark, table):
    prefixes, probes = table

    def run():
        out = []
        for address in probes:
            best = None
            for network, asn in prefixes:
                if address in network:
                    if best is None or network.prefixlen > best[0].prefixlen:
                        best = (network, asn)
            out.append(best)
        return out

    results = benchmark.pedantic(run, rounds=2, iterations=1)
    # Correctness cross-check against the trie on a sample.
    trie = PrefixTrie()
    for network, asn in prefixes:
        trie.insert(network, asn)
    for address, expected in list(zip(probes, results))[:50]:
        got = trie.longest_match(address)
        if expected is None:
            assert got is None
        else:
            assert got == (expected[0], expected[1])
