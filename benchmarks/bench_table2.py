"""Table 2 — DPS provider references, derived by the §3.3 bootstrap.

Runs the seed-ASN → SLD → ASN fixpoint over one day's full measurement and
prints the derived catalog next to the paper's ground truth.
"""

from repro.core.references import SignatureCatalog
from repro.reporting.figures import render_table2


def test_table2_fingerprint_bootstrap(benchmark, bench_study):
    fingerprints = benchmark.pedantic(
        bench_study.derive_table2, kwargs={"day": 30}, rounds=1, iterations=1
    )
    truth = SignatureCatalog.paper_table2()
    # Every provider's seed ASNs must be recovered.
    for name, result in fingerprints.items():
        assert truth.get(name).asns <= result.asns
    print()
    print(render_table2(fingerprints, reference=truth))
