"""Figure 6 — growth of DPS use in .nl and the Alexa Top-1M list.

Paper: .nl adoption 1.105× vs zone expansion 1.018×; Alexa 1.118× —
over six months.
"""

from repro.core.growth import GrowthAnalysis
from repro.reporting.figures import render_figure6
from repro.world.timeline import CCTLD_START_DAY


def test_fig6_cc_growth(benchmark, bench_results):
    window = CCTLD_START_DAY
    nl_adoption = bench_results.detection_nl.any_use_combined[window:]
    nl_zone = bench_results.zone_sizes["nl"][window:]
    alexa = bench_results.detection_alexa.any_use_combined[window:]
    analysis = GrowthAnalysis()

    def compute():
        return analysis.compare(
            {
                "DPS adoption (.nl)": nl_adoption,
                "Overall expansion (.nl)": nl_zone,
                "DPS adoption (Alexa)": alexa,
            }
        )

    series = benchmark.pedantic(compute, rounds=3, iterations=1)
    assert 1.02 < series["DPS adoption (.nl)"].growth_factor < 1.20
    assert 1.00 < series["Overall expansion (.nl)"].growth_factor < 1.05
    assert 1.02 < series["DPS adoption (Alexa)"].growth_factor < 1.22
    assert (
        series["DPS adoption (.nl)"].growth_factor
        > series["Overall expansion (.nl)"].growth_factor
    )
    print()
    print(render_figure6(bench_results))
