"""Figure 5 — growth of DPS use vs zone expansion in the gTLDs.

The headline result: adoption ≈1.24× against ≈1.09× expansion, after
median smoothing and anomaly cleaning.
"""

from repro.core.growth import GrowthAnalysis
from repro.reporting.figures import render_figure5


def test_fig5_gtld_growth(benchmark, bench_results):
    detection = bench_results.detection_gtld
    expansion = [
        sum(bench_results.zone_sizes[tld][day]
            for tld in ("com", "net", "org"))
        for day in range(bench_results.horizon)
    ]
    analysis = GrowthAnalysis()

    def compute():
        return analysis.compare(
            {
                "DPS adoption": detection.any_use_combined,
                "Overall expansion": expansion,
            }
        )

    series = benchmark.pedantic(compute, rounds=3, iterations=1)
    adoption = series["DPS adoption"].growth_factor
    zone = series["Overall expansion"].growth_factor
    assert 1.12 < adoption < 1.36   # paper: 1.24x
    assert 1.05 < zone < 1.13       # paper: 1.09x
    assert adoption > zone
    print()
    print(render_figure5(bench_results))
