"""repro.store — the 10× world-scale gate, measured.

Two gates over the same landed history (one gTLD source, a 60-day
window, ``REPRO_BENCH_SCALE10`` world — default 4000 → ~34k domains,
~1.7M observation rows, roughly 10× the columnar-plane bench world of
``bench_batches.py``):

* whole-history detect throughput — v1 (``ColumnStore.load`` of the
  zlib-JSON layout, then :meth:`AdoptionStudy.detect_from_store`)
  against v2 (:class:`SegmentStore` mmap open + the same detect). The
  results must be identical and the v2 path ≥3× faster end to end;
  both sides are serial, so core count cannot excuse a miss;
* sublinear read memory — fresh child processes open a 60-day and a
  12-day segment store and read one day's batch; manifest pruning plus
  mmap paging must keep the peak RSS of the long-history read within
  1.6× of the short one (a format that decodes whole files grows
  linearly in history length instead).
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

from repro.core.pipeline import AdoptionStudy
from repro.measurement.storage import ColumnStore
from repro.store import SegmentStore
from repro.stream.feed import SegmentReplayFeed
from repro.world.scenario import ScenarioConfig, build_paper_world

import pytest

SCALE10 = int(os.environ.get("REPRO_BENCH_SCALE10", "4000"))
SCALE10_SEED = 2016
SOURCE = "com"
DAYS = 60
#: Short-history store length for the sublinear-RSS comparison.
SHORT_DAYS = 12
PROBE_DAY = 5


@pytest.fixture(scope="module")
def scale_bench(tmp_path_factory):
    """(study, results, v1 dir, v2 dir, short v2 dir) at 10× scale."""
    world = build_paper_world(
        ScenarioConfig(scale=SCALE10, seed=SCALE10_SEED)
    )
    study = AdoptionStudy(world)
    segments = study.collect_segments()

    landed = ColumnStore()
    feed = SegmentReplayFeed(world, segments, sources=(SOURCE,))
    for part in feed.days(end=DAYS):
        landed.append(part.source, part.day, list(part.observations))

    root = tmp_path_factory.mktemp("scale10")
    v1_dir = str(root / "v1")
    v2_dir = str(root / "v2")
    short_dir = str(root / "v2-short")
    landed.save_legacy(v1_dir)
    landed.save(v2_dir)
    with SegmentStore(short_dir, create=True) as short_store:
        for source, day in landed.partitions():
            if day < SHORT_DAYS:
                short_store.append_batch(
                    source, day, landed.batch(source, day)
                )
    return study, landed, v1_dir, v2_dir, short_dir


def _detect_v1(study, directory):
    store = ColumnStore.load(directory)
    return study.detect_from_store(store, (SOURCE,))


def _detect_v2(study, directory):
    with SegmentStore(directory) as store:
        return study.detect_from_store(store, (SOURCE,))


def test_detect_from_store_speedup_at_10x(benchmark, scale_bench):
    study, landed, v1_dir, v2_dir, _ = scale_bench
    total_rows = sum(
        landed.row_count(source, day)
        for source, day in landed.partitions()
    )

    started = time.perf_counter()
    v1_result = _detect_v1(study, v1_dir)
    v1_seconds = time.perf_counter() - started

    v2_result = benchmark.pedantic(
        lambda: _detect_v2(study, v2_dir), rounds=2, iterations=1
    )

    # Identity first: the speedup is worthless if the results differ.
    assert v2_result == v1_result

    v2_seconds = benchmark.stats.stats.mean
    speedup = v1_seconds / v2_seconds
    benchmark.extra_info["rows"] = total_rows
    benchmark.extra_info["v1_seconds"] = round(v1_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    assert speedup >= 3.0, (
        f"segment store detect only {speedup:.2f}x over the v1 path"
    )


_RSS_PROBE = """
import os
import sys

from repro.store import SegmentStore

with SegmentStore(sys.argv[1]) as store:
    batch = store.batch("com", int(sys.argv[2]))
    rows = len(batch)
    # Current VmRSS, not ru_maxrss: a vfork'd child's peak high-water
    # mark records the parent's footprint during the fork window.
    with open("/proc/self/statm") as handle:
        rss_pages = int(handle.read().split()[1])
print(rows, rss_pages * os.sysconf("SC_PAGE_SIZE") // 1024)
"""


def _probe_rss(directory, day):
    """Resident set (KiB) of a fresh process holding one day's batch."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    output = subprocess.run(
        [sys.executable, "-c", _RSS_PROBE, directory, str(day)],
        check=True,
        capture_output=True,
        text=True,
        env=env,
    ).stdout.split()
    return int(output[0]), int(output[1])


def test_single_day_read_rss_sublinear_in_history(benchmark, scale_bench):
    """A pruned single-day read must not pay for the rest of history."""
    if not os.path.exists("/proc/self/statm"):
        pytest.skip("requires /proc for resident-set measurement")
    _, _, _, v2_dir, short_dir = scale_bench

    short_rows, short_rss = _probe_rss(short_dir, PROBE_DAY)
    long_rows, long_rss = benchmark.pedantic(
        lambda: _probe_rss(v2_dir, PROBE_DAY), rounds=2, iterations=1
    )
    assert long_rows == short_rows > 0

    ratio = long_rss / short_rss
    benchmark.extra_info["short_rss_kib"] = short_rss
    benchmark.extra_info["long_rss_kib"] = long_rss
    benchmark.extra_info["ratio"] = round(ratio, 3)
    assert ratio <= 1.6, (
        f"single-day read RSS grew {ratio:.2f}x with 5x longer history"
    )
