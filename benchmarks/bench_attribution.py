"""§4.4.1 — third-party anomaly attribution.

Verifies the documented anomaly calendar is recovered: Wix behind the
Incapsula/F5 swings, ENOM/ZOHO behind Verisign, Namecheap behind the
CloudFlare February 2016 event, Sedo behind the Akamai trough on
22 Nov 2015 (day 266), and prints the walk-through.
"""

from repro.core.attribution import AnomalyAttributor
from repro.core.references import SignatureCatalog
from repro.reporting.figures import render_attributions


def test_anomaly_attribution(benchmark, bench_results):
    attributor = AnomalyAttributor(
        bench_results.detection_gtld,
        bench_results.segments,
        SignatureCatalog.paper_table2(),
    )
    attributions = benchmark.pedantic(
        attributor.attribute_all, rounds=1, iterations=1
    )
    traced = {
        (a.event.provider, a.top_group)
        for a in attributions
    }
    assert ("Incapsula", "ns:wixdns.net") in traced
    assert ("F5 Networks", "ns:wixdns.net") in traced
    assert ("Verisign", "ns:enomdns.com") in traced
    assert ("Verisign", "ns:zohodns.com") in traced
    assert ("Akamai", "ns:sedoparking.com") in traced
    assert ("CloudFlare", "ns:registrar-servers.com") in traced
    assert ("CenturyLink", "ns:fabulous-dns.com") in traced
    assert ("Incapsula", "ns:sitematrixdns.com") in traced
    sedo = [a for a in attributions
            if a.event.provider == "Akamai" and a.event.day == 266]
    assert sedo and sedo[0].event.delta < 0
    print()
    print(render_attributions(bench_results, limit=30))
