"""Ablation — does the §4.2 anomaly cleaning recover the true trend?

The paper cleans anomalies "manually" before reporting 1.24×. Here the
simulation gives us a counterfactual the authors never had: the *calm
world* — identical seed and organic adoption, but with every transient
diversion window, outage, and on-demand mitigation removed. The cleaned
growth estimate from the full (anomalous) world must match the calm
world's true growth.
"""

import random

import pytest

from repro.core.growth import GrowthAnalysis
from repro.core.pipeline import AdoptionStudy
from repro.core.stats import growth_confidence_interval, relative_error
from repro.world.scenario import ScenarioConfig, build_paper_world

from conftest import BENCH_SCALE, BENCH_SEED


@pytest.fixture(scope="module")
def calm_adoption():
    calm_world = build_paper_world(
        ScenarioConfig(
            scale=BENCH_SCALE,
            seed=BENCH_SEED,
            include_transient_anomalies=False,
        )
    )
    results = AdoptionStudy(calm_world).run()
    return results.growth_gtld["DPS adoption"]


def test_cleaning_recovers_true_trend(benchmark, bench_results,
                                      calm_adoption):
    full_series = bench_results.growth_gtld["DPS adoption"]

    def estimate():
        return GrowthAnalysis().analyze(
            "adoption", bench_results.detection_gtld.any_use_combined
        ).growth_factor

    cleaned_factor = benchmark.pedantic(estimate, rounds=3, iterations=1)
    truth = calm_adoption.growth_factor
    error = relative_error(cleaned_factor, truth)
    assert error < 0.05, (
        f"cleaned {cleaned_factor:.3f}x vs calm-world truth {truth:.3f}x"
    )
    interval = growth_confidence_interval(
        full_series, rng=random.Random(BENCH_SEED)
    )
    print()
    print(f"cleaned estimate : {interval}")
    print(f"calm-world truth : {truth:.3f}x  (relative error {error:.1%})")
