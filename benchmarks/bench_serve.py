"""Serving plane — query throughput under live ingest, limiter cost.

Two claims, measured. First: the server keeps answering while the feed
is ingested and snapshot indexes are swapped underneath it — sustained
qps during ingest, the number of index versions crossed, and the
steady-state round-trip rate all land in ``extra_info`` of the
benchmark JSON. Second: the admission guard on the dispatcher path is
deterministic and cheap — a bursting client is capped by the sliding
window while an interleaved compliant client is admitted every single
time, and the fully guarded dispatch stays in the microsecond range.
"""

import threading
import time

from repro.serve.client import request_once
from repro.serve.guard import AdmissionGuard
from repro.serve.index import SnapshotSwapper
from repro.serve.protocol import Request
from repro.serve.ratelimit import SlidingWindowLimiter
from repro.serve.server import ServeDispatcher, ThreadedServer
from repro.stream.engine import StreamEngine
from repro.stream.feed import SegmentReplayFeed


def test_throughput_under_concurrent_ingest(
    benchmark, bench_world, bench_segments
):
    feed = SegmentReplayFeed(bench_world, bench_segments)
    engine = StreamEngine(bench_world.horizon, windows=feed.windows())
    swapper = SnapshotSwapper(engine)
    swapper.attach()
    dispatcher = ServeDispatcher(swapper.current_index)

    served = []
    errors = []
    stop = threading.Event()

    with ThreadedServer(dispatcher) as (host, port):

        def churn():
            while not stop.is_set():
                response = request_once(
                    host, port, "aggregate", {"scope": "gtld"}
                )
                if response.get("ok"):
                    served.append(response["result"]["day"])
                else:
                    errors.append(response)
                    return

        churner = threading.Thread(target=churn, daemon=True)
        start = time.perf_counter()
        churner.start()
        engine.ingest_feed(feed.days())
        ingest_seconds = time.perf_counter() - start
        stop.set()
        churner.join(timeout=60)

        assert not errors, errors[:1]
        assert len(served) >= 10
        observed = [day for day in served if day is not None]
        # Atomic swaps: the served day never moves backwards.
        assert observed == sorted(observed)

        def round_trip():
            return request_once(
                host, port, "aggregate", {"scope": "gtld"}
            )

        response = benchmark(round_trip)
        assert response["ok"] is True
        assert response["result"]["day"] == engine.latest_day("gtld")

    latency = benchmark.stats.stats.mean
    qps_during_ingest = len(served) / ingest_seconds
    benchmark.extra_info["requests_during_ingest"] = len(served)
    benchmark.extra_info["qps_during_ingest"] = round(
        qps_during_ingest, 1
    )
    benchmark.extra_info["index_versions_crossed"] = (
        swapper.current_index().version
    )
    benchmark.extra_info["steady_qps"] = round(1.0 / latency, 1)
    print(
        f"\nserved {len(served)} requests during ingest "
        f"({qps_during_ingest:.0f} qps across "
        f"{swapper.current_index().version} index versions); "
        f"steady round trip {latency * 1e6:.0f} us"
    )
    assert qps_during_ingest > 1


def test_guarded_dispatch_is_deterministic_and_cheap(
    benchmark, bench_world, bench_segments
):
    feed = SegmentReplayFeed(bench_world, bench_segments)
    engine = StreamEngine(bench_world.horizon, windows=feed.windows())
    swapper = SnapshotSwapper(engine)
    swapper.attach()
    engine.ingest_feed(feed.days(end=30))
    request = Request(op="aggregate", params={"scope": "gtld"}, id=None)

    # Logical ticks, one per guarded request, so the outcome is exact:
    # nine burster requests then one compliant request per round keeps
    # the compliant client at a tenth of the tick rate — inside its
    # window budget — while the burster saturates the same window.
    limit = 25
    guarded = ServeDispatcher(
        swapper.current_index,
        guard=AdmissionGuard(
            SlidingWindowLimiter(limit=limit, window=10 * limit)
        ),
    )
    rounds = 40
    burst_ok = 0
    compliant_ok = 0
    for _ in range(rounds):
        for _ in range(9):
            if guarded.handle_request(request, "burster").get("ok"):
                burst_ok += 1
        if guarded.handle_request(request, "compliant").get("ok"):
            compliant_ok += 1
    assert compliant_ok == rounds  # compliant client: 100% admitted
    assert burst_ok <= 2 * limit  # burster: capped by the window
    assert burst_ok < 9 * rounds

    # Cost of the fully guarded path (limiter + dispatch + encode).
    fast = ServeDispatcher(
        swapper.current_index,
        guard=AdmissionGuard(
            SlidingWindowLimiter(limit=1_000_000, window=8)
        ),
    )
    response = benchmark(lambda: fast.handle_request(request, "bench"))
    assert response["ok"] is True

    latency = benchmark.stats.stats.mean
    benchmark.extra_info["burst_admitted"] = burst_ok
    benchmark.extra_info["burst_offered"] = 9 * rounds
    benchmark.extra_info["compliant_admitted"] = compliant_ok
    benchmark.extra_info["guarded_dispatch_qps"] = round(1.0 / latency)
    print(
        f"\nburster {burst_ok}/{9 * rounds} admitted, compliant "
        f"{compliant_ok}/{rounds}; guarded dispatch "
        f"{latency * 1e6:.1f} us ({1.0 / latency:,.0f}/s)"
    )
