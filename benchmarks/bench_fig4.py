"""Figure 4 — namespace distribution vs DPS-use distribution.

The paper's observation: both distributions are similar and dominated by
.com (82.47% of names; 85.71% of DPS-using names).
"""

from repro.reporting.figures import render_figure4


def test_fig4_distributions(benchmark, bench_study, bench_results):
    distribution = benchmark(
        bench_study._namespace_distribution, bench_results.zone_sizes
    )
    assert abs(distribution["com"] - 0.8247) < 0.02
    dps = bench_results.dps_distribution
    assert abs(sum(dps.values()) - 1.0) < 1e-9
    # DPS use skews towards .com, as in the paper.
    assert dps["com"] >= distribution["com"] - 0.02
    print()
    print(render_figure4(bench_results))
