"""Table 1 — data set statistics.

Regenerates the per-source rows (source, start, days, #SLDs, #DPs, size):
data-point totals from the zone-size series, byte sizes measured on sampled
days through the columnar store and extrapolated.
"""

from repro.reporting.figures import render_table1


def test_table1_dataset_statistics(benchmark, bench_study, bench_results):
    rows = benchmark.pedantic(
        bench_study.build_dataset_table, rounds=3, iterations=1
    )
    assert [row.source for row in rows] == [
        "com", "net", "org", "nl", "alexa",
    ]
    print()
    print(render_table1(bench_results))
