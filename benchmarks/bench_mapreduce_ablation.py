"""Ablation — MapReduce engine vs direct aggregation for daily detection.

The Hadoop-style path models the paper's cluster job; direct dictionary
aggregation is the obvious single-process alternative. Both must agree.
"""

import pytest

from repro.core.references import SignatureCatalog
from repro.mapreduce.engine import run_job
from repro.mapreduce.jobs import daily_detection_job
from repro.measurement.scheduler import ClusterManager

CATALOG = SignatureCatalog.paper_table2()
DAY = 100


@pytest.fixture(scope="module")
def day_rows(bench_world):
    manager = ClusterManager(bench_world, enrich=True)
    rows = []
    for source in ("com", "net", "org"):
        rows.extend(manager.measure_day(source, DAY))
    return rows


def direct_counts(rows):
    counts = {}
    for row in rows:
        for provider in CATALOG.match(row):
            key = (row.day, provider)
            counts[key] = counts.get(key, 0) + 1
    return counts


def test_detection_via_mapreduce(benchmark, day_rows):
    outputs = benchmark(
        lambda: dict(run_job(daily_detection_job(CATALOG), day_rows))
    )
    assert outputs == direct_counts(day_rows)


def test_detection_via_direct_aggregation(benchmark, day_rows):
    outputs = benchmark(direct_counts, day_rows)
    assert sum(outputs.values()) > 0
