"""Schema gate for uploaded benchmark JSON (docs/PERFORMANCE.md).

The CI jobs upload ``BENCH_*.json`` artifacts and downstream tooling
reads each benchmark's ``extra_info`` block (speedups, row counts, RSS
probes). A bench that silently stops emitting ``extra_info`` still
passes pytest — the regression only shows up when someone opens the
artifact. This module is the seam that makes the drift loud: every CI
bench step is followed by ``python benchmarks/schema.py BENCH_x.json``,
which exits nonzero when any benchmark entry is missing or empty.

Usage::

    python benchmarks/schema.py BENCH_parallel.json [more.json ...]
"""

from __future__ import annotations

import json
import sys
from typing import Any, List, Mapping


class SchemaError(ValueError):
    """A benchmark payload that downstream artifact readers cannot use."""


def validate_payload(payload: Mapping[str, Any]) -> List[str]:
    """The fully-qualified names of the validated benchmarks.

    Raises :class:`SchemaError` on the first structural problem: no
    ``benchmarks`` list, an entry without a name or stats, or an entry
    whose ``extra_info`` is absent or empty.
    """
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise SchemaError(
            "payload has no 'benchmarks' list; was the file produced "
            "with --benchmark-json?"
        )
    names: List[str] = []
    for position, entry in enumerate(benchmarks):
        if not isinstance(entry, dict):
            raise SchemaError(
                f"benchmarks[{position}] is not an object"
            )
        name = entry.get("fullname") or entry.get("name")
        if not isinstance(name, str) or not name:
            raise SchemaError(
                f"benchmarks[{position}] has no name/fullname"
            )
        stats = entry.get("stats")
        if not isinstance(stats, dict) or "mean" not in stats:
            raise SchemaError(
                f"{name}: stats block is missing or has no mean"
            )
        extra = entry.get("extra_info")
        if not isinstance(extra, dict) or not extra:
            raise SchemaError(
                f"{name}: extra_info is missing or empty; every "
                f"uploaded bench must record its context (counts, "
                f"speedups, probe readings) for the artifact readers"
            )
        names.append(name)
    return names


def validate_file(path: str) -> List[str]:
    """Validate one ``--benchmark-json`` output file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SchemaError(f"{path}: unreadable benchmark JSON: {exc}")
    if not isinstance(payload, dict):
        raise SchemaError(f"{path}: top level is not a JSON object")
    return validate_payload(payload)


def main(argv: List[str]) -> int:
    if not argv:
        print(
            "usage: python benchmarks/schema.py BENCH_x.json [...]",
            file=sys.stderr,
        )
        return 2
    failed = False
    for path in argv:
        try:
            names = validate_file(path)
        except SchemaError as exc:
            print(f"schema: FAIL {exc}", file=sys.stderr)
            failed = True
            continue
        print(f"schema: ok {path} ({len(names)} benchmarks)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
