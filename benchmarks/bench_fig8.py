"""Figure 8 — CDF of on-demand peak durations, with P80 markers.

Paper P80s: Neustar 4d, Level 3 4d, CenturyLink 6d, Akamai 10d,
Incapsula 11d, Verisign 16d, DOSarrest 27d, CloudFlare 31d, F5 79d.
The reproduction target is the *ordering* (hybrid/short-lived providers
vs long-episode providers), not the exact day counts.
"""

from repro.core.peaks import PeakAnalysis
from repro.reporting.figures import render_figure8

PAPER_P80 = {
    "Neustar": 4, "Level 3": 4, "CenturyLink": 6, "Akamai": 10,
    "Incapsula": 11, "Verisign": 16, "DOSarrest": 27, "CloudFlare": 31,
    "F5 Networks": 79,
}


def test_fig8_peak_durations(benchmark, bench_results):
    analysis = PeakAnalysis(bench_results.horizon)
    stats = benchmark(analysis.analyze, bench_results.detection_gtld)

    measured = {
        name: stat.p80 for name, stat in stats.items() if stat.durations
    }
    # Short-lived providers stay short; long-episode providers stay long.
    assert measured["Neustar"] <= 8
    assert measured["F5 Networks"] >= 40
    assert measured["Neustar"] < measured["CloudFlare"]
    assert measured["Incapsula"] < measured["CloudFlare"]
    print()
    print(render_figure8(bench_results))
    print()
    print("P80 vs paper:", {
        name: f"{measured.get(name, '—')}d (paper {paper}d)"
        for name, paper in PAPER_P80.items()
    })
