"""§5 — authoritative name-server exposure.

"For some providers, only a small percentage of domains use delegation,
which potentially leaves a part of a domain's DNS infrastructure (i.e.,
the authoritative name server) susceptible to DDoS attacks."
"""

from repro.core.exposure import analyze_exposure, render_exposure


def test_ns_exposure(benchmark, bench_results):
    reports = benchmark(
        analyze_exposure, bench_results.detection_gtld
    )
    # CloudFlare's free authoritative DNS keeps most customers covered;
    # Incapsula's CNAME-first model leaves name servers outside.
    assert reports["Incapsula"].exposure_ratio > 0.9
    assert reports["CloudFlare"].exposure_ratio < 0.4
    assert (
        reports["Incapsula"].exposure_ratio
        > reports["CloudFlare"].exposure_ratio
    )
    print()
    print(render_exposure(reports))
