"""Figure 2 — DPS use over time, per TLD and combined.

Benchmarks the streaming detection pass over all gTLD domains' enriched
segments and prints the daily series with its anomalous peaks.
"""

from repro.core.detection import SegmentDetector
from repro.core.references import SignatureCatalog
from repro.reporting.figures import render_figure2


def test_fig2_daily_dps_use(
    benchmark, bench_world, bench_segments, bench_results
):
    catalog = SignatureCatalog.paper_table2()
    gtld_names = [
        name
        for name, timeline in bench_world.domains.items()
        if timeline.tld in ("com", "net", "org")
    ]

    def detect():
        detector = SegmentDetector(catalog, bench_world.horizon)
        for name in gtld_names:
            detector.process_domain(
                name, bench_world.domains[name].tld, bench_segments[name]
            )
        return detector.result()

    result = benchmark.pedantic(detect, rounds=3, iterations=1)
    benchmark.extra_info["gtld_domains"] = len(gtld_names)
    benchmark.extra_info["horizon_days"] = result.horizon
    benchmark.extra_info["peak_any_use"] = max(result.any_use_combined)
    assert result.any_use_combined[0] > 0
    # The zones' anomalies are transversal (§4.1): the combined peak shows
    # in .com as well.
    peak_day = max(
        range(result.horizon), key=result.any_use_combined.__getitem__
    )
    com = result.any_use_by_tld["com"]
    assert com[peak_day] > com[max(0, peak_day - 30)]
    print()
    print(render_figure2(bench_results))
