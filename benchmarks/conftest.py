"""Shared benchmark fixtures: one calibrated world + study per session.

Scale is controlled by ``REPRO_BENCH_SCALE`` (paper counts divided by this;
default 8000 → ~17k domains). Lower it (e.g. 1000) for a full-size run:

    REPRO_BENCH_SCALE=1000 pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.core.pipeline import AdoptionStudy
from repro.world.scenario import ScenarioConfig, build_paper_world

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "8000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2016"))


@pytest.fixture(scope="session")
def bench_world():
    return build_paper_world(
        ScenarioConfig(scale=BENCH_SCALE, seed=BENCH_SEED)
    )


@pytest.fixture(scope="session")
def bench_study(bench_world):
    return AdoptionStudy(bench_world)


@pytest.fixture(scope="session")
def bench_results(bench_study):
    return bench_study.run()


@pytest.fixture(scope="session")
def bench_segments(bench_study):
    return bench_study.collect_segments()
